package portfolio

import (
	"math/rand"
	"testing"

	"cpr/internal/smt/sat"
)

func lit(v int) sat.Lit  { return sat.MkLit(v, false) }
func nlit(v int) sat.Lit { return sat.MkLit(v, true) }

// addPigeonhole encodes PHP(n+1, n) — n+1 pigeons into n holes, unsat and
// increasingly hard — into any solver-shaped sink.
type clauseSink interface {
	NewVar() int
	AddClause(...sat.Lit) bool
}

func addPigeonhole(s clauseSink, n int) {
	vars := make([][]int, n+1)
	for p := 0; p <= n; p++ {
		vars[p] = make([]int, n)
		for h := 0; h < n; h++ {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		c := make([]sat.Lit, n)
		for h := 0; h < n; h++ {
			c[h] = lit(vars[p][h])
		}
		s.AddClause(c...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(nlit(vars[p1][h]), nlit(vars[p2][h]))
			}
		}
	}
}

// TestRaceUnsat forces the race path (threshold 1) on a hard unsat
// instance: every configuration must agree on Unsat.
func TestRaceUnsat(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		e := New(sat.Portfolio(k)...)
		e.Threshold = 1
		addPigeonhole(e, 6)
		if got := e.Solve(); got != sat.Unsat {
			t.Fatalf("portfolio(%d) PHP(7,6) = %v, want unsat", k, got)
		}
		if e.Stats().Races == 0 {
			t.Fatalf("portfolio(%d): threshold 1 on a hard query should race", k)
		}
	}
}

// TestRaceSatModelVerifies races a satisfiable instance and checks the
// winning member's model replays against its clauses.
func TestRaceSatModelVerifies(t *testing.T) {
	e := New(sat.Portfolio(4)...)
	e.Threshold = 1
	// C9 3-coloring: satisfiable with some search required.
	n, colors := 9, 3
	v := make([][]int, n)
	for i := range v {
		v[i] = make([]int, colors)
		for c := range v[i] {
			v[i][c] = e.NewVar()
		}
	}
	for i := range v {
		cl := make([]sat.Lit, colors)
		for c := range v[i] {
			cl[c] = lit(v[i][c])
		}
		e.AddClause(cl...)
		for c := range v[i] {
			j := (i + 1) % n
			e.AddClause(nlit(v[i][c]), nlit(v[j][c]))
		}
	}
	if got := e.Solve(); got != sat.Sat {
		t.Fatalf("C9 3-coloring = %v, want sat", got)
	}
	if !e.VerifyModel() {
		t.Fatal("winning member's model fails verification")
	}
}

// TestDifferentialAgainstSingle replays random incremental CNF streams
// with interleaved assumption solves into a plain solver and a racing
// portfolio: verdicts must match call by call.
func TestDifferentialAgainstSingle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 60; iter++ {
		single := sat.New()
		e := New(sat.Portfolio(1 + r.Intn(4))...)
		e.Threshold = 1 + uint64(r.Intn(8)) // race early and often
		nVars := 4 + r.Intn(10)
		for v := 0; v < nVars; v++ {
			single.NewVar()
			e.NewVar()
		}
		for round := 0; round < 4; round++ {
			for c := 0; c < 2+r.Intn(4*nVars); c++ {
				width := 1 + r.Intn(3)
				cl := make([]sat.Lit, width)
				for j := range cl {
					cl[j] = sat.MkLit(r.Intn(nVars), r.Intn(2) == 0)
				}
				single.AddClause(cl...)
				e.AddClause(cl...)
			}
			var assumps []sat.Lit
			for a := 0; a < r.Intn(3); a++ {
				assumps = append(assumps, sat.MkLit(r.Intn(nVars), r.Intn(2) == 0))
			}
			want := single.SolveUnder(assumps...)
			got := e.SolveUnder(assumps...)
			if got != want {
				t.Fatalf("iter %d round %d: portfolio=%v single=%v assumps=%v",
					iter, round, got, want, assumps)
			}
		}
	}
}

// TestCoreAfterRace checks assumption cores stay usable when a race
// answers Unsat-under-assumptions: the core must be a subset of the
// assumptions sufficient for the conflict.
func TestCoreAfterRace(t *testing.T) {
	e := New(sat.Portfolio(3)...)
	e.Threshold = 1
	a, b, c := e.NewVar(), e.NewVar(), e.NewVar()
	// A hard-ish core: pigeonhole guarded behind selector a.
	addPigeonhole(&guarded{e: e, sel: nlit(a)}, 5)
	_ = b
	if got := e.SolveUnder(lit(a), lit(c)); got != sat.Unsat {
		t.Fatalf("guarded PHP under selector = %v, want unsat", got)
	}
	core := e.Core()
	if len(core) == 0 {
		t.Fatal("expected a non-empty assumption core")
	}
	for _, l := range core {
		if l != lit(a) && l != lit(c) {
			t.Fatalf("core literal %v is not an assumption", l)
		}
	}
	seen := false
	for _, l := range core {
		if l == lit(a) {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("core %v should include the guarding selector", core)
	}
}

// guarded prefixes every clause with an extra disable-literal, the
// selector-guard encoding the smt layer uses.
type guarded struct {
	e   *Engine
	sel sat.Lit
}

func (g *guarded) NewVar() int { return g.e.NewVar() }
func (g *guarded) AddClause(lits ...sat.Lit) bool {
	return g.e.AddClause(append([]sat.Lit{g.sel}, lits...)...)
}

// TestCancellation: a caller stop that is already tripped must yield
// Unknown without hanging, from both the cheap path and the race path.
func TestCancellation(t *testing.T) {
	e := New(sat.Portfolio(3)...)
	e.Threshold = 1
	addPigeonhole(e, 6)
	stopped := false
	e.SetLimits(0, func() bool { return stopped })
	stopped = true
	if got := e.Solve(); got != sat.Unknown {
		t.Fatalf("stopped solve = %v, want unknown", got)
	}
	stopped = false
	if got := e.Solve(); got != sat.Unsat {
		t.Fatalf("resumed solve = %v, want unsat", got)
	}
}

// TestConflictBudget: a conflict budget below the instance's hardness
// yields Unknown; removing it yields the verdict.
func TestConflictBudget(t *testing.T) {
	e := New(sat.Portfolio(2)...)
	e.Threshold = 1
	addPigeonhole(e, 7)
	e.SetLimits(5, nil)
	if got := e.Solve(); got != sat.Unknown {
		t.Fatalf("budgeted solve = %v, want unknown", got)
	}
	e.SetLimits(0, nil)
	if got := e.Solve(); got != sat.Unsat {
		t.Fatalf("unbudgeted solve = %v, want unsat", got)
	}
}

// TestLearntSharing runs enough hard races that mirror wins (and the
// resulting clause imports) are overwhelmingly likely, then asserts the
// counters stay coherent. The exact winner is timing-dependent; the
// verdicts never are.
func TestLearntSharing(t *testing.T) {
	e := New(sat.Portfolio(4)...)
	e.Threshold = 1
	sels := make([]int, 6)
	for i := range sels {
		sels[i] = e.NewVar()
	}
	for i, n := range []int{5, 6, 5, 6, 5, 6} {
		addPigeonhole(&guarded{e: e, sel: nlit(sels[i])}, n)
	}
	for i := range sels {
		if got := e.SolveUnder(lit(sels[i])); got != sat.Unsat {
			t.Fatalf("guarded PHP %d = %v, want unsat", i, got)
		}
	}
	st := e.Stats()
	if st.Races == 0 {
		t.Fatal("expected races")
	}
	if st.MirrorWins > st.Races {
		t.Fatalf("mirror wins %d exceed races %d", st.MirrorWins, st.Races)
	}
	if st.MirrorWins == 0 && st.SharedLearnt != 0 {
		t.Fatalf("shared %d clauses without a mirror win", st.SharedLearnt)
	}
}

// BenchmarkPortfolio measures racing vs single-strategy on a stream of
// guarded hard queries (the shape of incremental repair workloads).
func BenchmarkPortfolio(b *testing.B) {
	run := func(b *testing.B, k int) {
		for i := 0; i < b.N; i++ {
			e := New(sat.Portfolio(k)...)
			sels := make([]int, 3)
			for j := range sels {
				sels[j] = e.NewVar()
			}
			for j, n := range []int{6, 6, 6} {
				addPigeonhole(&guarded{e: e, sel: nlit(sels[j])}, n)
			}
			for j := range sels {
				if got := e.SolveUnder(lit(sels[j])); got != sat.Unsat {
					b.Fatalf("query %d = %v, want unsat", j, got)
				}
			}
		}
	}
	b.Run("single", func(b *testing.B) { run(b, 1) })
	b.Run("race2", func(b *testing.B) { run(b, 2) })
	b.Run("race4", func(b *testing.B) { run(b, 4) })
}
