// Package portfolio races diverse CDCL search strategies over one clause
// set and returns the first decisive answer.
//
// The engine presents the same surface as a single *sat.Solver (the smt
// layer's cdcl interface), so it drops in behind the Tseitin encoder of an
// incremental smt.Context. Internally it keeps K member solvers built from
// diverse sat.Configs (restart policy, VSIDS decay, phase polarity).
// Member 0 — the leader — receives every NewVar/AddClause eagerly and is
// byte-for-byte the solver a non-portfolio context would run. Mirrors are
// synced lazily from a recorded variable/clause stream, and only when a
// query turns out to be hard:
//
//   - Every solve first runs the leader alone under a conflict threshold.
//     Easy queries (the vast majority) never pay for goroutines or mirror
//     sync.
//   - If the threshold trips, the mirrors are brought up to date and all
//     members race on their own goroutines. The first decisive member
//     cancels the rest through a cancel.Token; losers observe it at their
//     next conflict/decision boundary (the sat.Solver Stop hook).
//   - After a race won by a mirror, the winner's freshest short learned
//     clauses are imported into the leader on the calling goroutine, so
//     the race's work flows into the incremental retention machinery
//     (reduceDB manages the imports like any other learnt clause).
//
// Verdict soundness does not depend on which member answers: every member
// decides the same clause set, so Sat/Unsat answers agree; only the time
// to find them differs. Model *contents* and unsat-core *contents* may
// legitimately differ between members, which is why the smt layer races
// only verdict-tier queries (models for repair always come from the
// deterministic scratch path) — see DESIGN.md.
package portfolio

import (
	"sync"
	"sync/atomic"

	"cpr/internal/cancel"
	"cpr/internal/smt/sat"
)

// DefaultThreshold is the leader-alone conflict budget before a query is
// declared hard and raced. Queries that resolve under it (the vast
// majority in repair workloads) pay zero portfolio overhead.
const DefaultThreshold = 1024

const (
	shareMaxLen = 8  // only clauses this short are imported after a race
	shareMax    = 64 // at most this many clauses imported per race
)

// Stats counts portfolio activity.
type Stats struct {
	Races        uint64 // solves that escalated to a race
	MirrorWins   uint64 // races decided by a non-leader member
	SharedLearnt uint64 // learned clauses imported into the leader
}

// Engine is a portfolio of sat solvers behind a single-solver interface.
// It is not safe for concurrent use by multiple callers (neither is
// sat.Solver); the internal race goroutines are joined before any method
// returns.
type Engine struct {
	members []*sat.Solver
	synced  []int // per member: clauses replayed so far (index 0 unused)

	vars    int         // variables created, for lazy mirror sync
	stream  [][]sat.Lit // recorded AddClause calls, for lazy mirror sync
	winner  *sat.Solver // member that produced the last verdict
	imports [][]sat.Lit // reusable buffer for post-race clause sharing

	maxConflicts uint64
	stop         func() bool

	// Threshold is the leader-alone conflict budget before racing;
	// 0 means DefaultThreshold.
	Threshold uint64

	stats Stats
}

// New builds a portfolio over the given configurations; configs[0] becomes
// the leader. One config degenerates to a plain solver behind the
// interface. New(sat.Portfolio(k)...) gives the standard diverse set.
func New(configs ...sat.Config) *Engine {
	if len(configs) == 0 {
		configs = []sat.Config{{}}
	}
	e := &Engine{synced: make([]int, len(configs))}
	for _, cfg := range configs {
		e.members = append(e.members, sat.NewWith(cfg))
	}
	e.winner = e.members[0]
	return e
}

// Members returns the number of racing configurations.
func (e *Engine) Members() int { return len(e.members) }

// Stats returns portfolio activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// NewVar adds a fresh variable to the leader (mirrors follow lazily) and
// returns its index. Mirrors replay creations in order, so indices agree
// across members.
func (e *Engine) NewVar() int {
	e.vars++
	return e.members[0].NewVar()
}

// AddClause adds a clause to the leader and records it for mirror sync.
// The return value is the leader's (false once the clause set is known
// unsatisfiable at level 0).
func (e *Engine) AddClause(lits ...sat.Lit) bool {
	e.stream = append(e.stream, append([]sat.Lit(nil), lits...))
	return e.members[0].AddClause(lits...)
}

// SetLimits installs the per-query conflict budget and stop hook applied
// to every member on the next solve.
func (e *Engine) SetLimits(maxConflicts uint64, stop func() bool) {
	e.maxConflicts = maxConflicts
	e.stop = stop
}

// Snapshot sums the work counters of all members (so conflict/propagation
// deltas around a solve reflect total work spent, wherever it happened).
func (e *Engine) Snapshot() sat.Stats {
	var out sat.Stats
	for _, m := range e.members {
		st := m.Snapshot()
		out.Decisions += st.Decisions
		out.Propagations += st.Propagations
		out.Conflicts += st.Conflicts
		out.Restarts += st.Restarts
		out.Learned += st.Learned
		out.Deleted += st.Deleted
	}
	return out
}

// NumClauses reports the leader's problem clause count.
func (e *Engine) NumClauses() int { return e.members[0].NumClauses() }

// NumLearnts reports the leader's retained learned clauses.
func (e *Engine) NumLearnts() int { return e.members[0].NumLearnts() }

// Model returns the satisfying assignment found by the last solve's
// winning member.
func (e *Engine) Model() []bool { return e.winner.Model() }

// VerifyModel replays the winning member's model against its own problem
// clauses (identical to the leader's, modulo level-0 normalization).
func (e *Engine) VerifyModel() bool { return e.winner.VerifyModel() }

// Core returns the winning member's assumption core after an Unsat.
func (e *Engine) Core() []sat.Lit { return e.winner.Core() }

// Solve decides the clause set with no assumptions.
func (e *Engine) Solve() sat.Status { return e.SolveUnder() }

// SolveUnder decides the clause set under assumptions: leader alone below
// the threshold, full race above it.
func (e *Engine) SolveUnder(assumptions ...sat.Lit) sat.Status {
	lead := e.members[0]
	e.winner = lead

	// Cheap path: the leader alone, capped at the race threshold (or the
	// caller's budget, whichever is tighter).
	threshold := e.Threshold
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	trial := threshold
	if e.maxConflicts > 0 && e.maxConflicts < trial {
		trial = e.maxConflicts
	}
	if len(e.members) == 1 {
		trial = e.maxConflicts // nobody to race: give the leader everything
	}
	lead.SetLimits(trial, e.stop)
	before := lead.Snapshot().Conflicts
	st := lead.SolveUnder(assumptions...)
	if st != sat.Unknown || len(e.members) == 1 {
		return st
	}
	if e.stop != nil && e.stop() {
		return sat.Unknown // caller cancelled, not a hard query
	}
	spent := lead.Snapshot().Conflicts - before
	if e.maxConflicts > 0 && spent >= e.maxConflicts {
		return sat.Unknown // caller's budget exhausted before the threshold
	}

	// Hard query: bring mirrors up to date and race everyone. Each member
	// gets the caller's remaining conflict budget (budgets here are
	// per-strategy heuristics, not a global meter).
	e.syncMirrors()
	remaining := uint64(0)
	if e.maxConflicts > 0 {
		remaining = e.maxConflicts - spent
	}
	e.stats.Races++

	race := cancel.New()
	callerStop := e.stop
	raceStop := func() bool {
		return race.Expired() || (callerStop != nil && callerStop())
	}

	results := make([]sat.Status, len(e.members))
	var winIdx atomic.Int32
	winIdx.Store(-1)
	var wg sync.WaitGroup
	for i, m := range e.members {
		m.SetLimits(remaining, raceStop)
		wg.Add(1)
		go func(i int, m *sat.Solver) {
			defer wg.Done()
			r := m.SolveUnder(assumptions...)
			results[i] = r
			if r != sat.Unknown && winIdx.CompareAndSwap(-1, int32(i)) {
				race.Cancel() // first decisive answer stops the losers
			}
		}(i, m)
	}
	wg.Wait()

	w := winIdx.Load()
	if w < 0 {
		return sat.Unknown // every member hit the budget or the caller stop
	}
	e.winner = e.members[w]
	if w != 0 {
		e.stats.MirrorWins++
		// Flow the winner's freshest short learnts into the leader (the
		// incumbent for future cheap-path solves). Single-threaded: the
		// race goroutines are already joined.
		e.imports = e.winner.RecentLearnts(e.imports[:0], shareMaxLen, shareMax)
		e.stats.SharedLearnt += uint64(len(e.imports))
		lead.ImportLearnts(e.imports)
	}
	return results[w]
}

// syncMirrors replays the recorded variable and clause stream into every
// mirror that is behind.
func (e *Engine) syncMirrors() {
	for i := 1; i < len(e.members); i++ {
		m := e.members[i]
		for m.NumVars() < e.vars {
			m.NewVar()
		}
		for ; e.synced[i] < len(e.stream); e.synced[i]++ {
			m.AddClause(e.stream[e.synced[i]]...)
		}
	}
}
