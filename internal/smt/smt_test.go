package smt

import (
	"math/rand"
	"testing"

	"cpr/internal/expr"
	"cpr/internal/interval"
)

func newTestSolver() *Solver { return NewSolver(Options{}) }

func mustCheck(t *testing.T, s *Solver, f *expr.Term, bounds map[string]interval.Interval) Result {
	t.Helper()
	res, err := s.Check(f, bounds)
	if err != nil {
		t.Fatalf("Check(%v): %v", f, err)
	}
	return res
}

func TestBasicSatUnsat(t *testing.T) {
	s := newTestSolver()
	x, y := expr.IntVar("x"), expr.IntVar("y")
	f := expr.And(expr.Gt(x, expr.Int(3)), expr.Le(y, expr.Int(5)), expr.Eq(expr.Add(x, y), expr.Int(10)))
	res := mustCheck(t, s, f, nil)
	if res.Status != Sat {
		t.Fatalf("status %v", res.Status)
	}
	ok, err := expr.EvalBool(f, res.Model)
	if err != nil || !ok {
		t.Fatalf("model %v does not satisfy formula: %v %v", res.Model, ok, err)
	}
	g := expr.And(expr.Gt(x, expr.Int(3)), expr.Lt(x, expr.Int(2)))
	if res := mustCheck(t, s, g, nil); res.Status != Unsat {
		t.Fatalf("want unsat, got %v", res.Status)
	}
}

func TestBooleanStructure(t *testing.T) {
	s := newTestSolver()
	p, q := expr.BoolVar("p"), expr.BoolVar("q")
	x := expr.IntVar("x")
	f := expr.And(
		expr.Or(p, expr.Gt(x, expr.Int(0))),
		expr.Implies(p, q),
		expr.Not(q),
	)
	res := mustCheck(t, s, f, nil)
	if res.Status != Sat {
		t.Fatalf("status %v", res.Status)
	}
	if res.Model["p"] != 0 || res.Model["q"] != 0 || res.Model["x"] <= 0 {
		t.Fatalf("model %v", res.Model)
	}
	// p ⇔ ¬p is unsat.
	g := expr.Eq(p, expr.Not(p))
	if res := mustCheck(t, s, g, nil); res.Status != Unsat {
		t.Fatalf("want unsat, got %v", res.Status)
	}
}

func TestBoundsRespected(t *testing.T) {
	s := newTestSolver()
	a := expr.IntVar("a")
	bounds := map[string]interval.Interval{"a": interval.New(-10, 10)}
	f := expr.Gt(a, expr.Int(10))
	if res := mustCheck(t, s, f, bounds); res.Status != Unsat {
		t.Fatalf("a > 10 within [-10,10] should be unsat, got %v", res.Status)
	}
	f = expr.Gt(a, expr.Int(9))
	res := mustCheck(t, s, f, bounds)
	if res.Status != Sat || res.Model["a"] != 10 {
		t.Fatalf("got %v %v", res.Status, res.Model)
	}
}

func TestModelCoversBoundsVars(t *testing.T) {
	s := newTestSolver()
	x := expr.IntVar("x")
	bounds := map[string]interval.Interval{
		"x": interval.New(0, 5),
		"b": interval.New(3, 7), // not in the formula
	}
	res := mustCheck(t, s, expr.Ge(x, expr.Int(1)), bounds)
	if res.Status != Sat {
		t.Fatalf("status %v", res.Status)
	}
	if v, ok := res.Model["b"]; !ok || v < 3 || v > 7 {
		t.Fatalf("model must cover b within bounds, got %v", res.Model)
	}
}

func TestTrivialFormulas(t *testing.T) {
	s := newTestSolver()
	if res := mustCheck(t, s, expr.True(), nil); res.Status != Sat {
		t.Fatal("true should be sat")
	}
	if res := mustCheck(t, s, expr.False(), nil); res.Status != Unsat {
		t.Fatal("false should be unsat")
	}
	// Simplification alone discharges this.
	x := expr.IntVar("x")
	f := expr.Or(expr.Le(x, expr.Int(3)), expr.Gt(x, expr.Int(3)))
	if res := mustCheck(t, s, f, nil); res.Status != Sat {
		t.Fatal("tautology should be sat")
	}
}

func TestDivRemSemantics(t *testing.T) {
	s := newTestSolver()
	x := expr.IntVar("x")
	// x / 3 == 2 ∧ x % 3 == 2 → x = 8 (C semantics).
	f := expr.And(
		expr.Eq(expr.Div(x, expr.Int(3)), expr.Int(2)),
		expr.Eq(expr.Rem(x, expr.Int(3)), expr.Int(2)),
	)
	res := mustCheck(t, s, f, map[string]interval.Interval{"x": interval.New(-100, 100)})
	if res.Status != Sat || res.Model["x"] != 8 {
		t.Fatalf("got %v %v, want x=8", res.Status, res.Model)
	}
	// Negative dividend: -7 / 2 == -3 and -7 % 2 == -1 in C.
	f = expr.And(
		expr.Eq(x, expr.Int(-7)),
		expr.Eq(expr.Div(x, expr.Int(2)), expr.Int(-3)),
		expr.Eq(expr.Rem(x, expr.Int(2)), expr.Int(-1)),
	)
	if res := mustCheck(t, s, f, nil); res.Status != Sat {
		t.Fatalf("C division semantics violated: %v", res.Status)
	}
	f = expr.And(
		expr.Eq(x, expr.Int(-7)),
		expr.Eq(expr.Div(x, expr.Int(2)), expr.Int(-4)), // floor division: wrong for C
	)
	if res := mustCheck(t, s, f, nil); res.Status != Unsat {
		t.Fatalf("floor-division model admitted: %v", res.Status)
	}
}

func TestDivByZeroGuarded(t *testing.T) {
	s := newTestSolver()
	x, y := expr.IntVar("x"), expr.IntVar("y")
	// y = 0 ∨ x/y > 0: the y = 0 branch must remain satisfiable.
	f := expr.Or(expr.Eq(y, expr.Int(0)), expr.Gt(expr.Div(x, y), expr.Int(0)))
	bounds := map[string]interval.Interval{"x": interval.New(-50, 50), "y": interval.New(0, 0)}
	res := mustCheck(t, s, f, bounds)
	if res.Status != Sat {
		t.Fatalf("guarded division: got %v", res.Status)
	}
}

func TestIntegerIte(t *testing.T) {
	s := newTestSolver()
	x := expr.IntVar("x")
	p := expr.BoolVar("p")
	// ite(p, x, -x) == 5 ∧ x == -5 → p must be false.
	f := expr.And(
		expr.Eq(expr.Ite(p, x, expr.Neg(x)), expr.Int(5)),
		expr.Eq(x, expr.Int(-5)),
	)
	res := mustCheck(t, s, f, nil)
	if res.Status != Sat || res.Model["p"] != 0 {
		t.Fatalf("got %v %v", res.Status, res.Model)
	}
}

func TestNonlinearPatchShape(t *testing.T) {
	// The shape the synthesizer produces: x·a with a in a small box.
	s := newTestSolver()
	x, a := expr.IntVar("x"), expr.IntVar("a")
	f := expr.And(
		expr.Ge(expr.Mul(x, a), expr.Int(50)),
		expr.Le(x, expr.Int(10)),
		expr.Ge(x, expr.Int(0)),
	)
	bounds := map[string]interval.Interval{"a": interval.New(-10, 10)}
	res := mustCheck(t, s, f, bounds)
	if res.Status != Sat {
		t.Fatalf("status %v", res.Status)
	}
	if res.Model["x"]*res.Model["a"] < 50 {
		t.Fatalf("model violates constraint: %v", res.Model)
	}
}

func TestValid(t *testing.T) {
	s := newTestSolver()
	x := expr.IntVar("x")
	ok, err := s.Valid(expr.Or(expr.Le(x, expr.Int(0)), expr.Ge(x, expr.Int(0))), nil)
	if err != nil || !ok {
		t.Fatalf("tautology not valid: %v %v", ok, err)
	}
	ok, err = s.Valid(expr.Ge(x, expr.Int(0)), nil)
	if err != nil || ok {
		t.Fatalf("contingent formula reported valid")
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := newTestSolver()
	x := expr.IntVar("x")
	mustCheck(t, s, expr.Gt(x, expr.Int(0)), nil)
	mustCheck(t, s, expr.Lt(x, expr.Int(0)), nil)
	if s.Stats().Queries != 2 || s.Stats().SatAnswers != 2 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

// randFormula builds a random boolean formula over x, y (ints in small
// boxes) and p (bool), without div/rem so brute-force evaluation is total.
func randFormula(r *rand.Rand, depth int) *expr.Term {
	x, y := expr.IntVar("x"), expr.IntVar("y")
	if depth == 0 {
		c := expr.Int(int64(r.Intn(11) - 5))
		iv := []*expr.Term{x, y, expr.Add(x, y), expr.Sub(x, y), expr.Mul(x, y)}[r.Intn(5)]
		switch r.Intn(4) {
		case 0:
			return expr.Le(iv, c)
		case 1:
			return expr.Gt(iv, c)
		case 2:
			return expr.Eq(iv, c)
		default:
			return expr.BoolVar("p")
		}
	}
	a := randFormula(r, depth-1)
	b := randFormula(r, depth-1)
	switch r.Intn(5) {
	case 0:
		return expr.And(a, b)
	case 1:
		return expr.Or(a, b)
	case 2:
		return expr.Not(a)
	case 3:
		return expr.Implies(a, b)
	default:
		return expr.Eq(a, b)
	}
}

// TestRandomDifferential compares the SMT solver against brute-force
// enumeration over a small box.
func TestRandomDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	bounds := map[string]interval.Interval{
		"x": interval.New(-3, 3),
		"y": interval.New(-3, 3),
	}
	for iter := 0; iter < 200; iter++ {
		f := randFormula(r, 3)
		s := newTestSolver()
		res, err := s.Check(f, bounds)
		if err != nil {
			t.Fatalf("iter %d: %v (formula %v)", iter, err, f)
		}
		want := false
		for x := int64(-3); x <= 3 && !want; x++ {
			for y := int64(-3); y <= 3 && !want; y++ {
				for _, p := range []int64{0, 1} {
					v, err := expr.EvalBool(f, expr.Model{"x": x, "y": y, "p": p})
					if err != nil {
						t.Fatalf("eval: %v", err)
					}
					if v {
						want = true
						break
					}
				}
			}
		}
		if (res.Status == Sat) != want {
			t.Fatalf("iter %d: solver=%v brute=%v formula=%v", iter, res.Status, want, f)
		}
		if res.Status == Sat {
			m := res.Model
			if _, ok := m["p"]; !ok {
				m["p"] = 0
			}
			ok, err := expr.EvalBool(f, m)
			if err != nil || !ok {
				t.Fatalf("iter %d: model %v does not satisfy %v (%v)", iter, m, f, err)
			}
		}
	}
}

// TestRandomDivRem checks div/rem purification against evaluation.
func TestRandomDivRem(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for iter := 0; iter < 100; iter++ {
		a := int64(r.Intn(41) - 20)
		b := int64(r.Intn(10)) + 1
		if r.Intn(2) == 0 {
			b = -b
		}
		x := expr.IntVar("x")
		f := expr.And(
			expr.Eq(x, expr.Int(a)),
			expr.Eq(expr.Div(x, expr.Int(b)), expr.Int(a/b)),
			expr.Eq(expr.Rem(x, expr.Int(b)), expr.Int(a%b)),
		)
		s := newTestSolver()
		res, err := s.Check(f, nil)
		if err != nil || res.Status != Sat {
			t.Fatalf("iter %d: %d/%d: got %v %v", iter, a, b, res.Status, err)
		}
		// And the wrong quotient must be rejected.
		g := expr.And(
			expr.Eq(x, expr.Int(a)),
			expr.Eq(expr.Div(x, expr.Int(b)), expr.Int(a/b+1)),
		)
		res, err = s.Check(g, nil)
		if err != nil || res.Status != Unsat {
			t.Fatalf("iter %d: wrong quotient admitted for %d/%d: %v %v", iter, a, b, res.Status, err)
		}
	}
}

func BenchmarkCheckConjunction(b *testing.B) {
	x, y, z := expr.IntVar("x"), expr.IntVar("y"), expr.IntVar("z")
	f := expr.And(
		expr.Gt(x, expr.Int(3)),
		expr.Le(y, expr.Int(5)),
		expr.Eq(expr.Add(x, y, z), expr.Int(10)),
		expr.Or(expr.Lt(z, expr.Int(0)), expr.Gt(z, expr.Int(2))),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSolver(Options{})
		res, err := s.Check(f, nil)
		if err != nil || res.Status != Sat {
			b.Fatalf("got %v %v", res.Status, err)
		}
	}
}
