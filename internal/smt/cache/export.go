package cache

import (
	"fmt"
	"strconv"
	"strings"

	"cpr/internal/expr"
	"cpr/internal/interval"
)

// Export/Import move a cache's contents across a process death: the
// checkpoint layer (internal/journal callers) exports the learned verdicts
// at a snapshot barrier and re-imports them on resume, so a resumed run
// answers the same queries from cache that the uninterrupted run would
// have. Traffic stats are not exported — the resuming engine carries those
// in its own snapshot as baselines.

// ExportedEntry is one exact verdict entry. Bounds is the canonical
// bounds-key rendering (BoundsKey), which is parseable and sufficient to
// rebuild the subsumption index on import.
type ExportedEntry struct {
	F      *expr.Term
	Bounds string
	Value  Value
}

// ExportedCore identifies an unsat-subsumption core by its source entry.
type ExportedCore struct {
	F      *expr.Term
	Bounds string
}

// Export is a cache's full retained content, ordered oldest-first so a
// faithful Import replays insertions in LRU order.
type Export struct {
	Entries []ExportedEntry
	Cores   []ExportedCore
}

// Export snapshots the cache's entries and subsumption cores, both
// oldest-first. Models are cloned; the export shares nothing mutable with
// the live cache. A nil cache exports empty.
func (c *Cache) Export() Export {
	if c == nil {
		return Export{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var ex Export
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		v := e.value
		if v.Model != nil {
			v.Model = v.Model.Clone()
		}
		ex.Entries = append(ex.Entries, ExportedEntry{F: e.key.f, Bounds: e.key.bounds, Value: v})
	}
	for el := c.cores.Back(); el != nil; el = el.Prev() {
		core := el.Value.(*unsatCore)
		ex.Cores = append(ex.Cores, ExportedCore{F: core.src.f, Bounds: core.src.bounds})
	}
	return ex
}

// Import replays an export into the cache: entries are inserted in order
// (so LRU recency matches the exporting cache), then each exported core is
// rebuilt from its source entry by re-deriving conjuncts and variable
// domains from the parsed bounds key. Import counts no traffic and is
// meant for an empty cache; entries beyond the cache's limits evict
// oldest-first exactly as live Stores would (without counting evictions).
func (c *Cache) Import(ex Export) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range ex.Entries {
		if e.F == nil {
			return fmt.Errorf("cache import: entry with nil formula")
		}
		if _, _, err := parseBoundsKey(e.Bounds); err != nil {
			return err
		}
		v := e.Value
		if v.Model != nil {
			v.Model = v.Model.Clone()
		}
		k := key{f: e.F, bounds: e.Bounds}
		if el, ok := c.entries[k]; ok {
			el.Value.(*entry).value = v
			c.lru.MoveToFront(el)
			continue
		}
		c.entries[k] = c.lru.PushFront(&entry{key: k, value: v})
		for len(c.entries) > c.opts.MaxEntries {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.entries, oldest.Value.(*entry).key)
		}
	}
	for _, core := range ex.Cores {
		if core.F == nil {
			return fmt.Errorf("cache import: core with nil formula")
		}
		def, bounds, err := parseBoundsKey(core.Bounds)
		if err != nil {
			return err
		}
		k := key{f: core.F, bounds: core.Bounds}
		if _, ok := c.entries[k]; !ok {
			// The source entry was evicted above (or never exported);
			// its generalization must not outlive it.
			continue
		}
		c.addCore(core.F, bounds, def, k)
	}
	return nil
}

// parseBoundsKey inverts boundsKey: "d:lo:hi" then ";name:lo:hi" per
// variable. Variable names are identifiers (no ':' or ';'), so the
// rendering is unambiguous.
func parseBoundsKey(s string) (def interval.Interval, bounds map[string]interval.Interval, err error) {
	fields := strings.Split(s, ";")
	name, iv, err := parseBoundsField(fields[0])
	if err != nil || name != "d" {
		return def, nil, fmt.Errorf("cache import: malformed bounds key %q", s)
	}
	def = iv
	if len(fields) > 1 {
		bounds = make(map[string]interval.Interval, len(fields)-1)
		for _, f := range fields[1:] {
			name, iv, err := parseBoundsField(f)
			if err != nil || name == "" {
				return def, nil, fmt.Errorf("cache import: malformed bounds key %q", s)
			}
			bounds[name] = iv
		}
	}
	return def, bounds, nil
}

func parseBoundsField(f string) (string, interval.Interval, error) {
	var iv interval.Interval
	i := strings.IndexByte(f, ':')
	j := strings.LastIndexByte(f, ':')
	if i < 0 || j <= i {
		return "", iv, fmt.Errorf("cache import: malformed bounds field %q", f)
	}
	lo, err1 := strconv.ParseInt(f[i+1:j], 10, 64)
	hi, err2 := strconv.ParseInt(f[j+1:], 10, 64)
	if err1 != nil || err2 != nil {
		return "", iv, fmt.Errorf("cache import: malformed bounds field %q", f)
	}
	return f[:i], interval.Interval{Lo: lo, Hi: hi}, nil
}
