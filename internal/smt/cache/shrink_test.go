package cache

import (
	"fmt"
	"sync"
	"testing"

	"cpr/internal/expr"
	"cpr/internal/interval"
)

// fill stores n distinct sat entries (distinct formulas over x).
func fill(c *Cache, n int) {
	for i := 0; i < n; i++ {
		f := expr.Gt(x(), expr.Int(int64(i)))
		c.Store(f, nil, def, Value{Sat: true, Model: expr.Model{"x": int64(i) + 1}})
	}
}

func TestApproxBytesTracksInserts(t *testing.T) {
	c := New(Options{})
	if got := c.ApproxBytes(); got != 0 {
		t.Fatalf("empty cache ApproxBytes = %d", got)
	}
	fill(c, 10)
	got := c.ApproxBytes()
	if got == 0 {
		t.Fatal("ApproxBytes stayed 0 after stores")
	}
	// Per-entry floor: overhead + bounds string + one model var.
	if min := uint64(10 * entryOverheadBytes); got < min {
		t.Fatalf("ApproxBytes = %d, want >= %d", got, min)
	}
	var nilCache *Cache
	if nilCache.ApproxBytes() != 0 {
		t.Fatal("nil ApproxBytes non-zero")
	}
}

func TestApproxBytesReturnsToZero(t *testing.T) {
	c := New(Options{})
	// Mix sat entries, verdict-only upgrades, and unsat entries (which add
	// subsumption cores) so every accounting path runs.
	f1 := expr.Gt(x(), expr.Int(1))
	c.Store(f1, nil, def, Value{Sat: true})                            // verdict-only
	c.Store(f1, nil, def, Value{Sat: true, Model: expr.Model{"x": 2}}) // upgrade
	f2 := expr.And(expr.Gt(x(), expr.Int(5)), expr.Lt(x(), expr.Int(0)))
	b := map[string]interval.Interval{"x": interval.New(0, 10)}
	c.Store(f2, b, def, Value{Sat: false}) // unsat: entry + core
	c.Invalidate(f1, nil, def)
	c.Invalidate(f2, b, def)
	if got := c.ApproxBytes(); got != 0 {
		t.Fatalf("ApproxBytes = %d after invalidating everything, want 0", got)
	}
}

func TestShrinkToTarget(t *testing.T) {
	c := New(Options{})
	fill(c, 100)
	before := c.ApproxBytes()
	target := before / 2
	evicted, freed := c.Shrink(target)
	if evicted == 0 || freed == 0 {
		t.Fatalf("Shrink(%d) evicted=%d freed=%d", target, evicted, freed)
	}
	if got := c.ApproxBytes(); got > target {
		t.Fatalf("ApproxBytes = %d after Shrink(%d)", got, target)
	}
	if before-c.ApproxBytes() != freed {
		t.Fatalf("freed %d but footprint dropped %d", freed, before-c.ApproxBytes())
	}
	st := c.Stats()
	if st.Shrinks != 1 || st.ShrinkEvictions != uint64(evicted) {
		t.Fatalf("stats %+v, want 1 shrink / %d evictions", st, evicted)
	}
	// Shrinking keeps the MRU end: the newest entry must survive.
	f := expr.Gt(x(), expr.Int(99))
	if _, ok := c.Lookup(f, nil, def); !ok {
		t.Fatal("Shrink evicted the most-recently-used entry")
	}
}

func TestShrinkToZeroEmptiesEverything(t *testing.T) {
	c := New(Options{})
	fill(c, 20)
	// Add unsat entries so cores exist too.
	for i := 0; i < 5; i++ {
		f := expr.And(expr.Gt(x(), expr.Int(int64(10+i))), expr.Lt(x(), expr.Int(0)))
		c.Store(f, nil, def, Value{Sat: false})
	}
	c.Shrink(0)
	if c.Len() != 0 || c.ApproxBytes() != 0 {
		t.Fatalf("Shrink(0) left len=%d bytes=%d", c.Len(), c.ApproxBytes())
	}
	if c.cores.Len() != 0 || len(c.coreByKey) != 0 {
		t.Fatalf("Shrink(0) left %d cores", c.cores.Len())
	}
	var nilCache *Cache
	if e, f := nilCache.Shrink(0); e != 0 || f != 0 {
		t.Fatal("nil Shrink did something")
	}
}

func TestMaxBytesCapEnforcedOnStore(t *testing.T) {
	c := New(Options{MaxBytes: 2048})
	fill(c, 1000)
	if got := c.ApproxBytes(); got > 2048 {
		t.Fatalf("ApproxBytes = %d, cap 2048", got)
	}
	if c.Len() == 0 {
		t.Fatal("cap evicted everything including the newest entry")
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions counted under byte cap")
	}
}

// TestShrinkRacesConcurrentWriters is the satellite's shrink race test:
// hammer Store/Lookup from several goroutines while another goroutine
// repeatedly shrinks. Run under -race this proves the locking; the final
// consistency check proves the byte accounting survives interleaving.
func TestShrinkRacesConcurrentWriters(t *testing.T) {
	c := New(Options{MaxEntries: 512})
	var writers, shrinker sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				f := expr.Gt(expr.IntVar(fmt.Sprintf("v%d", w)), expr.Int(int64(i%257)))
				if i%3 == 0 {
					c.Store(f, nil, def, Value{Sat: false}) // entry + core
				} else {
					c.Store(f, nil, def, Value{Sat: true, Model: expr.Model{"x": int64(i)}})
				}
				c.Lookup(f, nil, def)
			}
		}()
	}
	shrinker.Add(1)
	go func() {
		defer shrinker.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Shrink(c.ApproxBytes() / 2)
		}
	}()
	writers.Wait()
	close(stop)
	shrinker.Wait()

	// Consistency: recompute the footprint from scratch and compare with
	// the running figure.
	c.mu.Lock()
	var want uint64
	for _, el := range c.entries {
		e := el.Value.(*entry)
		want += entryBytes(e.key, e.value)
	}
	for el := c.cores.Front(); el != nil; el = el.Next() {
		want += coreBytes(el.Value.(*unsatCore))
	}
	got := c.bytes
	c.mu.Unlock()
	if got != want {
		t.Fatalf("running bytes %d != recomputed %d after concurrent shrink", got, want)
	}
}
