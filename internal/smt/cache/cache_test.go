package cache

import (
	"fmt"
	"sync"
	"testing"

	"cpr/internal/expr"
	"cpr/internal/interval"
)

var def = interval.New(-100, 100)

func x() *expr.Term { return expr.IntVar("x") }
func y() *expr.Term { return expr.IntVar("y") }

func TestExactHitMiss(t *testing.T) {
	c := New(Options{})
	f := expr.Gt(x(), expr.Int(3))
	b := map[string]interval.Interval{"x": interval.New(0, 10)}

	if _, ok := c.Lookup(f, b, def); ok {
		t.Fatal("lookup on empty cache hit")
	}
	c.Store(f, b, def, Value{Sat: true, Model: expr.Model{"x": 4}})
	v, ok := c.Lookup(f, b, def)
	if !ok || !v.Sat || v.Model["x"] != 4 {
		t.Fatalf("expected sat hit with model x=4, got %+v ok=%v", v, ok)
	}

	// A different bounds map is a different query.
	if _, ok := c.Lookup(f, map[string]interval.Interval{"x": interval.New(0, 5)}, def); ok {
		t.Fatal("hit across different bounds")
	}
	// A different default domain is a different query too.
	if _, ok := c.Lookup(f, b, interval.New(-5, 5)); ok {
		t.Fatal("hit across different default bounds")
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 {
		t.Fatalf("stats = %+v, want 1 hit / 3 misses", st)
	}
}

func TestModelIsolation(t *testing.T) {
	c := New(Options{})
	f := expr.Gt(x(), expr.Int(0))
	stored := expr.Model{"x": 1}
	c.Store(f, nil, def, Value{Sat: true, Model: stored})
	stored["x"] = 99 // caller mutates its map after Store

	v1, _ := c.Lookup(f, nil, def)
	if v1.Model["x"] != 1 {
		t.Fatalf("cache shares the caller's model map: got x=%d", v1.Model["x"])
	}
	v1.Model["x"] = 77 // hit receiver mutates its copy
	v2, _ := c.Lookup(f, nil, def)
	if v2.Model["x"] != 1 {
		t.Fatalf("cache shares hit models between callers: got x=%d", v2.Model["x"])
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Options{MaxEntries: 2})
	fs := []*expr.Term{
		expr.Gt(x(), expr.Int(0)),
		expr.Gt(x(), expr.Int(1)),
		expr.Gt(x(), expr.Int(2)),
	}
	c.Store(fs[0], nil, def, Value{Sat: true, Model: expr.Model{"x": 1}})
	c.Store(fs[1], nil, def, Value{Sat: true, Model: expr.Model{"x": 2}})
	c.Lookup(fs[0], nil, def) // refresh 0; 1 is now the LRU entry
	c.Store(fs[2], nil, def, Value{Sat: true, Model: expr.Model{"x": 3}})

	if c.Len() != 2 {
		t.Fatalf("len = %d after eviction, want 2", c.Len())
	}
	if _, ok := c.Lookup(fs[1], nil, def); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Lookup(fs[0], nil, def); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestUnsatSubsumption(t *testing.T) {
	c := New(Options{})
	lo := expr.Lt(x(), expr.Int(3))
	hi := expr.Gt(x(), expr.Int(5))
	core := expr.And(lo, hi)
	b := map[string]interval.Interval{"x": interval.New(-10, 10)}
	c.Store(core, b, def, Value{Sat: false})

	// Superset conjunct set, same domain: unsat by subsumption.
	super := expr.And(lo, hi, expr.Gt(y(), expr.Int(0)))
	v, ok := c.Lookup(super, b, def)
	if !ok || v.Sat {
		t.Fatalf("superset query not subsumed: %+v ok=%v", v, ok)
	}
	// Narrower domain for the core variable: still subsumed.
	narrow := map[string]interval.Interval{"x": interval.New(0, 8)}
	if v, ok := c.Lookup(super, narrow, def); !ok || v.Sat {
		t.Fatal("narrower-domain query not subsumed")
	}
	// Wider domain: the cached verdict says nothing; must miss.
	wide := map[string]interval.Interval{"x": interval.New(-200, 200)}
	if _, ok := c.Lookup(super, wide, def); ok {
		t.Fatal("wider-domain query wrongly subsumed")
	}
	// Subset conjuncts (hi alone) are not implied unsat.
	if _, ok := c.Lookup(hi, b, def); ok {
		t.Fatal("subset query wrongly subsumed")
	}

	st := c.Stats()
	if st.Subsumed != 2 {
		t.Fatalf("subsumed = %d, want 2", st.Subsumed)
	}
}

func TestNoCoreFromEmptyExtraneousBounds(t *testing.T) {
	// x > 0 is unsat here only because the bounds map pins the unrelated
	// variable y to an empty domain; that verdict must not generalize to
	// queries that assert x > 0 under other bounds.
	c := New(Options{})
	f := expr.Gt(x(), expr.Int(0))
	poisoned := map[string]interval.Interval{
		"x": interval.New(-10, 10),
		"y": interval.Empty(),
	}
	c.Store(f, poisoned, def, Value{Sat: false})

	clean := map[string]interval.Interval{"x": interval.New(-10, 10)}
	if _, ok := c.Lookup(expr.And(f, expr.Gt(y(), expr.Int(0))), clean, def); ok {
		t.Fatal("verdict caused by an empty extraneous domain was generalized")
	}
	// The exact entry itself must still hit.
	if v, ok := c.Lookup(f, poisoned, def); !ok || v.Sat {
		t.Fatal("exact poisoned-bounds entry lost")
	}
}

func TestNeverStoresNilReceiver(t *testing.T) {
	var c *Cache
	f := expr.Gt(x(), expr.Int(0))
	c.Store(f, nil, def, Value{Sat: true})
	if _, ok := c.Lookup(f, nil, def); ok {
		t.Fatal("nil cache returned a hit")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(Options{MaxEntries: 64, MaxUnsatCores: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f := expr.Gt(x(), expr.Int(int64(i%100)))
				b := map[string]interval.Interval{"x": interval.New(0, int64(10+i%5))}
				if v, ok := c.Lookup(f, b, def); ok {
					if want := int64(i % 100); v.Model["x"] != want {
						panic(fmt.Sprintf("goroutine %d: model x=%d, want %d", g, v.Model["x"], want))
					}
					continue
				}
				c.Store(f, b, def, Value{Sat: true, Model: expr.Model{"x": int64(i % 100)}})
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Fatalf("lookups = %d, want %d", st.Hits+st.Misses, 8*200)
	}
}

func TestVerdictOnlyEntries(t *testing.T) {
	c := New(Options{})
	f := expr.Gt(x(), expr.Int(0))
	b := map[string]interval.Interval{"x": interval.New(0, 10)}

	// A verdict-only sat entry answers LookupVerdict but not Lookup.
	c.Store(f, b, def, Value{Sat: true})
	if isSat, ok := c.LookupVerdict(f, b, def); !ok || !isSat {
		t.Fatalf("LookupVerdict after verdict-only store: sat=%v ok=%v", isSat, ok)
	}
	if _, ok := c.Lookup(f, b, def); ok {
		t.Fatal("Lookup returned a sat hit without a model")
	}

	// Storing the model upgrades the entry in place.
	c.Store(f, b, def, Value{Sat: true, Model: expr.Model{"x": 1}})
	if v, ok := c.Lookup(f, b, def); !ok || v.Model["x"] != 1 {
		t.Fatalf("upgraded entry not visible to Lookup: %+v ok=%v", v, ok)
	}
	// A later verdict-only store must not downgrade it.
	c.Store(f, b, def, Value{Sat: true})
	if v, ok := c.Lookup(f, b, def); !ok || v.Model["x"] != 1 {
		t.Fatalf("verdict-only store downgraded a model entry: %+v ok=%v", v, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want a single upgraded entry", c.Len())
	}
}

func TestLookupVerdictUnsatAndSubsumption(t *testing.T) {
	c := New(Options{})
	f := expr.And(expr.Gt(x(), expr.Int(5)), expr.Lt(x(), expr.Int(3)))
	b := map[string]interval.Interval{"x": interval.New(0, 10)}
	c.Store(f, b, def, Value{Sat: false})

	if isSat, ok := c.LookupVerdict(f, b, def); !ok || isSat {
		t.Fatalf("exact unsat verdict: sat=%v ok=%v", isSat, ok)
	}
	// A superset conjunction over the same bounds is subsumed.
	super := expr.And(f, expr.Gt(y(), expr.Int(0)))
	if isSat, ok := c.LookupVerdict(super, b, def); !ok || isSat {
		t.Fatalf("subsumed unsat verdict: sat=%v ok=%v", isSat, ok)
	}
	st := c.Stats()
	if st.Subsumed != 1 {
		t.Fatalf("stats = %+v, want one subsumed hit", st)
	}
}
