package cache

import (
	"cpr/internal/expr"
	"cpr/internal/interval"
)

// Delta support for cross-shard knowledge sharing (internal/shard): a
// shard periodically exports the verdicts it learned since the last
// exchange, and peers import them after validating each one. Two pieces
// make the exchange sound across time:
//
//   - EntryKey/Key let the exporter remember which entries it already
//     shipped, so each exchange carries only the delta.
//   - TrackInvalidations/DrainInvalidations record withdrawn entries, so a
//     peer that imported an entry in an earlier exchange also withdraws it
//     — an invalidated verdict must never be resurrected by a stale import.

// EntryKey returns the exact-entry Key for an exported entry's fields (the
// interned formula plus its canonical bounds-key rendering). It is the
// same key KeyOf computes from the live bounds map.
func EntryKey(f *expr.Term, boundsKey string) Key {
	return Key{f: f, bounds: boundsKey}
}

// Fields returns the key's formula and canonical bounds rendering — the
// inverse of EntryKey, for serializing retractions.
func (k Key) Fields() (*expr.Term, string) { return k.f, k.bounds }

// ParseBoundsKey validates and inverts a canonical bounds-key rendering
// (BoundsKey): the default domain plus the per-variable bounds map.
// Importers use it to re-derive the domains an exported verdict was
// decided under.
func ParseBoundsKey(s string) (def interval.Interval, bounds map[string]interval.Interval, err error) {
	return parseBoundsKey(s)
}

// TrackInvalidations starts recording withdrawn entries (InvalidateKey /
// Invalidate calls that removed an entry or a subsumption core) for
// DrainInvalidations. Safe on a nil cache.
func (c *Cache) TrackInvalidations() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trackInv = true
}

// DrainInvalidations returns the keys invalidated since the previous
// drain and clears the record. Returns nil unless TrackInvalidations was
// called. Safe on a nil cache.
func (c *Cache) DrainInvalidations() []Key {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.retract
	c.retract = nil
	return out
}
