package cache

import (
	"testing"

	"cpr/internal/expr"
	"cpr/internal/interval"
)

func TestExportImportRoundTrip(t *testing.T) {
	c := New(Options{})
	b := map[string]interval.Interval{"x": interval.New(0, 10)}

	fSat := expr.Gt(x(), expr.Int(3))
	c.Store(fSat, b, def, Value{Sat: true, Model: expr.Model{"x": 4}})
	fVerdict := expr.Lt(x(), expr.Int(50))
	c.Store(fVerdict, nil, def, Value{Sat: true}) // verdict-only
	fUnsat := expr.And(expr.Gt(x(), expr.Int(5)), expr.Lt(x(), expr.Int(2)))
	c.Store(fUnsat, b, def, Value{Sat: false})

	ex := c.Export()
	if len(ex.Entries) != 3 {
		t.Fatalf("exported %d entries, want 3", len(ex.Entries))
	}
	if len(ex.Cores) != 1 {
		t.Fatalf("exported %d cores, want 1", len(ex.Cores))
	}

	fresh := New(Options{})
	if err := fresh.Import(ex); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 3 {
		t.Fatalf("imported cache holds %d entries, want 3", fresh.Len())
	}

	// Exact sat entry with model survives.
	v, ok := fresh.Lookup(fSat, b, def)
	if !ok || !v.Sat || v.Model["x"] != 4 {
		t.Fatalf("sat entry lost: %+v ok=%v", v, ok)
	}
	// Verdict-only entry answers LookupVerdict but not Lookup.
	if _, ok := fresh.Lookup(fVerdict, nil, def); ok {
		t.Fatal("verdict-only entry answered a model lookup")
	}
	if sat, ok := fresh.LookupVerdict(fVerdict, nil, def); !ok || !sat {
		t.Fatalf("verdict-only entry lost: sat=%v ok=%v", sat, ok)
	}
	// Unsat entry and its rebuilt subsumption core survive: a superset
	// conjunct query over the same domains is unsat without solving.
	super := expr.And(fUnsat, expr.Ge(y(), expr.Int(0)))
	if sat, ok := fresh.LookupVerdict(super, b, def); !ok || sat {
		t.Fatalf("subsumption core not rebuilt: sat=%v ok=%v", sat, ok)
	}

	// Import left traffic stats untouched except the lookups above.
	st := fresh.Stats()
	if st.Evictions != 0 {
		t.Fatalf("import counted %d evictions", st.Evictions)
	}
}

func TestExportIsolation(t *testing.T) {
	c := New(Options{})
	f := expr.Eq(x(), expr.Int(7))
	c.Store(f, nil, def, Value{Sat: true, Model: expr.Model{"x": 7}})
	ex := c.Export()
	ex.Entries[0].Value.Model["x"] = 999
	v, ok := c.Lookup(f, nil, def)
	if !ok || v.Model["x"] != 7 {
		t.Fatalf("mutating an export leaked into the cache: %+v", v)
	}
}

func TestImportRespectsLimits(t *testing.T) {
	big := New(Options{MaxEntries: 16})
	var unsat *expr.Term
	for i := 0; i < 16; i++ {
		f := expr.Eq(x(), expr.Int(int64(i)))
		if i == 0 {
			// Oldest entry is unsat and contributes a core.
			f = expr.And(expr.Gt(x(), expr.Int(5)), expr.Lt(x(), expr.Int(2)))
			unsat = f
			big.Store(f, nil, def, Value{Sat: false})
			continue
		}
		big.Store(f, nil, def, Value{Sat: true, Model: expr.Model{"x": int64(i)}})
	}
	small := New(Options{MaxEntries: 4})
	if err := small.Import(big.Export()); err != nil {
		t.Fatal(err)
	}
	if small.Len() != 4 {
		t.Fatalf("imported cache holds %d entries, want the 4 newest", small.Len())
	}
	// The unsat source entry was evicted during import, so its core must
	// not have been rebuilt.
	if sat, ok := small.LookupVerdict(expr.And(unsat, expr.Ge(y(), expr.Int(0))), nil, def); ok && !sat {
		t.Fatal("core outlived its evicted source entry")
	}
}

func TestImportRejectsMalformed(t *testing.T) {
	c := New(Options{})
	if err := c.Import(Export{Entries: []ExportedEntry{{F: nil, Bounds: "d:0:1"}}}); err == nil {
		t.Fatal("imported a nil formula")
	}
	if err := c.Import(Export{Entries: []ExportedEntry{{F: x(), Bounds: "garbage"}}}); err == nil {
		t.Fatal("imported a malformed bounds key")
	}
	if err := c.Import(Export{Cores: []ExportedCore{{F: x(), Bounds: ":::"}}}); err == nil {
		t.Fatal("imported a malformed core bounds key")
	}
}

func TestParseBoundsKeyRoundTrip(t *testing.T) {
	cases := []struct {
		bounds map[string]interval.Interval
		def    interval.Interval
	}{
		{nil, interval.New(-100, 100)},
		{map[string]interval.Interval{"x": interval.New(0, 10)}, interval.New(-5, 5)},
		{map[string]interval.Interval{"a": interval.New(-9, -1), "zz": interval.New(3, 3)}, interval.New(-1<<40, 1<<40)},
	}
	for _, tc := range cases {
		s := BoundsKey(tc.bounds, tc.def)
		def2, bounds2, err := parseBoundsKey(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if BoundsKey(bounds2, def2) != s {
			t.Fatalf("round trip of %q produced %q", s, BoundsKey(bounds2, def2))
		}
	}
}
