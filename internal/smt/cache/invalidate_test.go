package cache

import (
	"fmt"
	"sync"
	"testing"

	"cpr/internal/expr"
	"cpr/internal/interval"
)

func TestInvalidateExactEntry(t *testing.T) {
	c := New(Options{})
	f := expr.Gt(x(), expr.Int(3))
	b := map[string]interval.Interval{"x": interval.New(0, 10)}
	c.Store(f, b, def, Value{Sat: true, Model: expr.Model{"x": 4}})
	k := KeyOf(f, b, def)
	c.InvalidateKey(k)
	if _, ok := c.Lookup(f, b, def); ok {
		t.Fatal("invalidated entry still answers")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after invalidation, want 0", c.Len())
	}
	// Idempotent, and a zero key is a no-op.
	c.InvalidateKey(k)
	c.InvalidateKey(Key{})
}

func TestInvalidateWithdrawsSubsumptionCore(t *testing.T) {
	c := New(Options{})
	// Unsat formula whose core would subsume the stronger query below.
	f := expr.And(expr.Gt(x(), expr.Int(5)), expr.Lt(x(), expr.Int(3)))
	b := map[string]interval.Interval{"x": interval.New(-10, 10)}
	c.Store(f, b, def, Value{Sat: false})

	stronger := expr.And(expr.Gt(x(), expr.Int(5)), expr.Lt(x(), expr.Int(3)), expr.Gt(y(), expr.Int(0)))
	bs := map[string]interval.Interval{"x": interval.New(-10, 10), "y": interval.New(0, 5)}
	if v, ok := c.Lookup(stronger, bs, def); !ok || v.Sat {
		t.Fatal("subsumption index not primed")
	}

	// Pulling the unsat entry must also pull its generalization: a poisoned
	// unsat verdict that kept answering supersets via the core index would
	// defeat the invalidation entirely.
	c.Invalidate(f, b, def)
	if _, ok := c.Lookup(f, b, def); ok {
		t.Fatal("invalidated unsat entry still answers exactly")
	}
	if v, ok := c.Lookup(stronger, bs, def); ok && !v.Sat {
		t.Fatal("invalidated unsat entry still answers via subsumption")
	}
}

func TestInvalidateLeavesOtherCores(t *testing.T) {
	c := New(Options{})
	f1 := expr.And(expr.Gt(x(), expr.Int(5)), expr.Lt(x(), expr.Int(3)))
	f2 := expr.And(expr.Gt(y(), expr.Int(9)), expr.Lt(y(), expr.Int(2)))
	c.Store(f1, nil, def, Value{Sat: false})
	c.Store(f2, nil, def, Value{Sat: false})
	c.Invalidate(f1, nil, def)

	q := expr.And(expr.Gt(y(), expr.Int(9)), expr.Lt(y(), expr.Int(2)), expr.Gt(x(), expr.Int(0)))
	if v, ok := c.Lookup(q, nil, def); !ok || v.Sat {
		t.Fatal("unrelated subsumption core lost to invalidation")
	}
}

func TestCoreEvictionCleansIndex(t *testing.T) {
	c := New(Options{MaxUnsatCores: 2})
	var fs []*expr.Term
	for i := 0; i < 4; i++ {
		f := expr.And(expr.Gt(x(), expr.Int(int64(10+i))), expr.Lt(x(), expr.Int(int64(i))))
		fs = append(fs, f)
		c.Store(f, nil, def, Value{Sat: false})
	}
	// The two oldest cores were evicted; invalidating their source entries
	// must not disturb the two survivors (regression for coreByKey staleness).
	c.Invalidate(fs[0], nil, def)
	c.Invalidate(fs[1], nil, def)
	q := expr.And(expr.Gt(x(), expr.Int(13)), expr.Lt(x(), expr.Int(3)), expr.Gt(y(), expr.Int(0)))
	if v, ok := c.Lookup(q, nil, def); !ok || v.Sat {
		t.Fatal("surviving core lost after evicted-core invalidation")
	}
	if c.cores.Len() != 2 || len(c.coreByKey) != 2 {
		t.Fatalf("core index inconsistent: list=%d map=%d", c.cores.Len(), len(c.coreByKey))
	}
}

// TestConcurrentSubsumptionWriters exercises the unsat-core subsumption
// index under 4 concurrent writers mixed with invalidations and subsuming
// readers — the exact access pattern of 4 exploration workers sharing one
// cache while the guard layer pulls poisoned entries. Run under -race.
func TestConcurrentSubsumptionWriters(t *testing.T) {
	c := New(Options{MaxEntries: 64, MaxUnsatCores: 16})
	const workers = 4
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				v := expr.IntVar(fmt.Sprintf("v%d", i%8))
				unsat := expr.And(expr.Gt(v, expr.Int(5)), expr.Lt(v, expr.Int(3)))
				b := map[string]interval.Interval{v.Name: interval.New(-10, int64(10+w))}
				c.Store(unsat, b, def, Value{Sat: false})
				q := expr.And(expr.Gt(v, expr.Int(5)), expr.Lt(v, expr.Int(3)), expr.Gt(x(), expr.Int(0)))
				qb := map[string]interval.Interval{v.Name: interval.New(-10, 10), "x": interval.New(0, 5)}
				if val, ok := c.Lookup(q, qb, def); ok && val.Sat {
					t.Error("subsumption produced a sat verdict for an unsat superset")
					return
				}
				if i%3 == 0 {
					c.Invalidate(unsat, b, def)
				}
				sat := expr.Ge(v, expr.Int(int64(i%4)))
				c.Store(sat, b, def, Value{Sat: true, Model: expr.Model{v.Name: 7}})
				c.Lookup(sat, b, def)
			}
		}(w)
	}
	wg.Wait()
	if got, want := c.cores.Len(), len(c.coreByKey); got < want {
		t.Fatalf("core index leaked: list=%d map=%d", got, want)
	}
}
