// Package cache memoizes SMT verdicts. The repair loop re-solves
// structurally identical QF_LIA queries constantly — every branch flip
// re-checks patch feasibility against the same path prefix, and parallel
// workers race to answer the same pick-new-input queries — so a verdict
// cache in front of the solver removes a large share of the total solver
// work.
//
// Keying is exact and cheap because terms are hash-consed (package expr):
// a query is identified by the interned formula pointer plus a canonical
// rendering of its bounds map (including the solver's default bounds, which
// affect both the verdict and the model). Two extras beyond plain
// memoization:
//
//   - Models are cached alongside sat verdicts and returned as copies, so
//     a hit is indistinguishable from re-solving (the solver is
//     deterministic for a fixed query and options).
//   - Unsat verdicts additionally feed a bounded subsumption index: a
//     query whose top-level conjunct set is a superset of a cached-unsat
//     conjunct set, over variable domains no wider than the cached ones,
//     is unsat without solving.
//
// A Cache is safe for concurrent use by many solvers.
package cache

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cpr/internal/expr"
	"cpr/internal/interval"
)

// Options bounds the cache.
type Options struct {
	// MaxEntries caps the exact verdict/model entries (LRU eviction).
	// Zero means 4096.
	MaxEntries int
	// MaxUnsatCores caps the subsumption index (LRU eviction). Zero
	// means 256.
	MaxUnsatCores int
	// MaxBytes caps the cache's approximate byte footprint (entries +
	// cores, see ApproxBytes); Store evicts LRU entries past it. Zero
	// means no byte cap — the entry-count caps still apply.
	MaxBytes uint64
}

func (o Options) withDefaults() Options {
	if o.MaxEntries == 0 {
		o.MaxEntries = 4096
	}
	if o.MaxUnsatCores == 0 {
		o.MaxUnsatCores = 256
	}
	return o
}

// Stats counts cache traffic. Subsumed is the subset of Hits answered by
// the unsat-subsumption index rather than an exact entry. Shrinks counts
// explicit Shrink calls that evicted anything; ShrinkEvictions the
// entries they removed (also included in Evictions).
type Stats struct {
	Hits            uint64
	Misses          uint64
	Evictions       uint64
	Subsumed        uint64
	Shrinks         uint64
	ShrinkEvictions uint64
}

// Value is a cached verdict: Sat with its model, or unsat. A Sat value
// with a nil Model is verdict-only — the incremental solver decides
// verdicts without constructing models, and such entries answer
// LookupVerdict but not Lookup (which promises a model on sat hits).
type Value struct {
	Sat   bool
	Model expr.Model
}

// verdictOnly reports whether the value carries no model despite being sat.
func (v Value) verdictOnly() bool { return v.Sat && v.Model == nil }

type key struct {
	f      *expr.Term
	bounds string
}

type entry struct {
	key   key
	value Value
}

// unsatCore records why a formula was unsat: its top-level conjuncts and
// the effective domain of each of its variables. Any query that asserts
// at least these conjuncts over domains contained in these is unsat too.
// src is the exact-entry key whose Store added the core, so invalidating
// that entry also withdraws its generalization.
type unsatCore struct {
	conjuncts map[*expr.Term]struct{}
	bounds    map[string]interval.Interval
	src       key
}

// Cache is a bounded memo table of solver verdicts.
type Cache struct {
	mu        sync.Mutex
	opts      Options
	entries   map[key]*list.Element
	lru       *list.List // of *entry; front = most recently used
	cores     *list.List // of *unsatCore; front = most recently added/hit
	coreByKey map[key]*list.Element
	stats     Stats
	// bytes is the running approximate footprint of entries + cores,
	// maintained on every insert/evict/invalidate (see entryBytes and
	// coreBytes). It is what ApproxBytes reports and Shrink targets.
	bytes uint64
	// trackInv/retract record withdrawn entries for shard knowledge
	// sharing: a peer that imported an entry must hear about its
	// invalidation, or the withdrawn verdict would outlive its source.
	// See TrackInvalidations/DrainInvalidations in delta.go.
	trackInv bool
	retract  []Key
}

// New returns an empty cache.
func New(opts Options) *Cache {
	return &Cache{
		opts:      opts.withDefaults(),
		entries:   make(map[key]*list.Element),
		lru:       list.New(),
		cores:     list.New(),
		coreByKey: make(map[key]*list.Element),
	}
}

// Stats returns a snapshot of the traffic counters. A nil cache has
// zero stats.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of exact entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Lookup returns the cached verdict for f under the given bounds (def is
// the solver's default domain for unbounded integer variables). The model
// of a sat hit is a copy; callers may mutate it freely.
func (c *Cache) Lookup(f *expr.Term, bounds map[string]interval.Interval, def interval.Interval) (Value, bool) {
	if c == nil {
		return Value{}, false
	}
	k := key{f: f, bounds: boundsKey(bounds, def)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		v := el.Value.(*entry).value
		if !v.verdictOnly() {
			c.lru.MoveToFront(el)
			c.stats.Hits++
			return Value{Sat: v.Sat, Model: v.Model.Clone()}, true
		}
		// Verdict-only sat entry: a model is required, so this is a miss;
		// the subsequent Store upgrades the entry with the model.
	}
	if c.subsumedUnsat(f, bounds, def) {
		c.stats.Hits++
		c.stats.Subsumed++
		return Value{Sat: false}, true
	}
	c.stats.Misses++
	return Value{}, false
}

// LookupVerdict returns the cached verdict for f under the given bounds
// when only the sat/unsat answer is needed: it accepts verdict-only
// entries that Lookup (which promises a model) must skip.
func (c *Cache) LookupVerdict(f *expr.Term, bounds map[string]interval.Interval, def interval.Interval) (isSat, ok bool) {
	if c == nil {
		return false, false
	}
	k := key{f: f, bounds: boundsKey(bounds, def)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*entry).value.Sat, true
	}
	if c.subsumedUnsat(f, bounds, def) {
		c.stats.Hits++
		c.stats.Subsumed++
		return false, true
	}
	c.stats.Misses++
	return false, false
}

// Store records a decisive verdict for f under the given bounds. Unknown
// answers must not be stored — they depend on budgets, not on the query.
func (c *Cache) Store(f *expr.Term, bounds map[string]interval.Interval, def interval.Interval, v Value) {
	if c == nil {
		return
	}
	k := key{f: f, bounds: boundsKey(bounds, def)}
	if v.Model != nil { // Clone maps nil to an empty model; keep verdict-only nil
		v.Model = v.Model.Clone()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		// Concurrent workers race to fill the same slot; the solver is
		// deterministic, so the values agree and either may win — except
		// that a verdict-only value must not downgrade an entry that
		// already carries a model.
		if old := el.Value.(*entry).value; !(v.verdictOnly() && !old.verdictOnly()) {
			c.bytes += entryBytes(k, v) - entryBytes(k, old)
			el.Value.(*entry).value = v
		}
		c.lru.MoveToFront(el)
		return
	}
	c.entries[k] = c.lru.PushFront(&entry{key: k, value: v})
	c.bytes += entryBytes(k, v)
	for len(c.entries) > c.opts.MaxEntries ||
		(c.opts.MaxBytes > 0 && c.bytes > c.opts.MaxBytes && len(c.entries) > 1) {
		c.evictOldestLocked()
	}
	if !v.Sat {
		c.addCore(f, bounds, def, k)
	}
}

// evictOldestLocked removes the LRU entry. Caller holds c.mu and
// guarantees the cache is non-empty.
func (c *Cache) evictOldestLocked() {
	oldest := c.lru.Back()
	c.lru.Remove(oldest)
	e := oldest.Value.(*entry)
	delete(c.entries, e.key)
	c.bytes -= entryBytes(e.key, e.value)
	c.stats.Evictions++
}

// Approximate per-item overheads: struct headers, the list element, and a
// share of the map bucket. The goal is a cheap, monotone estimate the
// governor can act on — not malloc-exact truth.
const (
	entryOverheadBytes = 160
	coreOverheadBytes  = 112
	modelEntryBytes    = 48 // map bucket share + name header; name length added separately
	boundEntryBytes    = 56 // name header + interval + bucket share
	conjunctBytes      = 16 // one interned pointer + set bucket share
)

// entryBytes approximates the heap footprint of one exact entry.
func entryBytes(k key, v Value) uint64 {
	n := uint64(entryOverheadBytes + len(k.bounds))
	for name := range v.Model {
		n += modelEntryBytes + uint64(len(name))
	}
	return n
}

// coreBytes approximates the heap footprint of one subsumption core.
func coreBytes(core *unsatCore) uint64 {
	n := uint64(coreOverheadBytes + len(core.src.bounds))
	n += uint64(len(core.conjuncts)) * conjunctBytes
	for name := range core.bounds {
		n += boundEntryBytes + uint64(len(name))
	}
	return n
}

// ApproxBytes reports the cache's approximate byte footprint (exact
// entries plus subsumption cores). Zero on a nil cache. This is the size
// callback the memory governor polls, so it must stay cheap: the figure
// is maintained incrementally, never recomputed.
func (c *Cache) ApproxBytes() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Shrink evicts least-recently-used entries (and, if entries alone do not
// suffice, oldest subsumption cores) until the approximate footprint is
// at or below targetBytes. A target of 0 empties the cache. It returns
// the number of items evicted and the approximate bytes freed. Safe on a
// nil cache and safe to race with concurrent Lookup/Store traffic — the
// cache is pure memoization, so shrinking never changes results, only
// hit rates.
func (c *Cache) Shrink(targetBytes uint64) (evicted int, freed uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	before := c.bytes
	for c.bytes > targetBytes && len(c.entries) > 0 {
		c.evictOldestLocked()
		c.stats.ShrinkEvictions++
		evicted++
	}
	for c.bytes > targetBytes && c.cores.Len() > 0 {
		oldest := c.cores.Back()
		c.cores.Remove(oldest)
		core := oldest.Value.(*unsatCore)
		delete(c.coreByKey, core.src)
		c.bytes -= coreBytes(core)
		c.stats.ShrinkEvictions++
		evicted++
	}
	if evicted > 0 {
		c.stats.Shrinks++
	}
	return evicted, before - c.bytes
}

// Key identifies an exact cache entry; obtained from KeyOf before a Store
// so the entry can later be withdrawn by InvalidateKey without re-rendering
// the bounds map. The zero Key matches nothing.
type Key struct {
	f      *expr.Term
	bounds string
}

// KeyOf returns the exact-entry key a Store for this query would use.
func KeyOf(f *expr.Term, bounds map[string]interval.Interval, def interval.Interval) Key {
	return Key{f: f, bounds: boundsKey(bounds, def)}
}

// InvalidateKey withdraws the exact entry identified by k, along with any
// unsat-subsumption core that entry's Store contributed — a poisoned unsat
// entry must not keep answering supersets of its conjuncts after it is
// pulled. Unknown keys are a no-op; safe on a nil cache.
func (c *Cache) InvalidateKey(k Key) {
	if c == nil {
		return
	}
	ik := key{f: k.f, bounds: k.bounds}
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := false
	if el, ok := c.entries[ik]; ok {
		c.lru.Remove(el)
		e := el.Value.(*entry)
		delete(c.entries, ik)
		c.bytes -= entryBytes(e.key, e.value)
		removed = true
	}
	if el, ok := c.coreByKey[ik]; ok {
		c.cores.Remove(el)
		c.bytes -= coreBytes(el.Value.(*unsatCore))
		delete(c.coreByKey, ik)
		removed = true
	}
	if removed && c.trackInv {
		c.retract = append(c.retract, k)
	}
}

// Invalidate withdraws the entry for f under the given bounds; see
// InvalidateKey.
func (c *Cache) Invalidate(f *expr.Term, bounds map[string]interval.Interval, def interval.Interval) {
	c.InvalidateKey(KeyOf(f, bounds, def))
}

// addCore indexes an unsat formula for subsumption. Caller holds c.mu.
func (c *Cache) addCore(f *expr.Term, bounds map[string]interval.Interval, def interval.Interval, k key) {
	core := &unsatCore{
		conjuncts: conjunctSet(f),
		bounds:    make(map[string]interval.Interval),
		src:       k,
	}
	for _, v := range expr.Vars(f) {
		if v.Sort != expr.SortInt {
			continue
		}
		if iv, ok := bounds[v.Name]; ok {
			core.bounds[v.Name] = iv
		} else {
			core.bounds[v.Name] = def
		}
	}
	// An empty domain for a variable outside f makes the whole query unsat
	// for a reason the conjunct set cannot witness (the solver pins every
	// bounded variable, occurring or not); such a verdict must not be
	// generalized to other bounds maps.
	for name, iv := range bounds {
		if iv.IsEmpty() {
			if _, ok := core.bounds[name]; !ok {
				return
			}
		}
	}
	if old, ok := c.coreByKey[k]; ok {
		c.cores.Remove(old)
		c.bytes -= coreBytes(old.Value.(*unsatCore))
	}
	c.coreByKey[k] = c.cores.PushFront(core)
	c.bytes += coreBytes(core)
	for c.cores.Len() > c.opts.MaxUnsatCores {
		oldest := c.cores.Back()
		c.cores.Remove(oldest)
		c.bytes -= coreBytes(oldest.Value.(*unsatCore))
		delete(c.coreByKey, oldest.Value.(*unsatCore).src)
	}
}

// subsumedUnsat reports whether a cached unsat core proves f unsat: the
// core's conjuncts are a subset of f's and every core variable's domain in
// this query is contained in the core's. Any model of f within its bounds
// would then satisfy the core formula within the core's bounds — which has
// none. Caller holds c.mu.
func (c *Cache) subsumedUnsat(f *expr.Term, bounds map[string]interval.Interval, def interval.Interval) bool {
	if c.cores.Len() == 0 {
		return false
	}
	have := conjunctSet(f)
	for el := c.cores.Front(); el != nil; el = el.Next() {
		core := el.Value.(*unsatCore)
		if matches(core, have, bounds, def) {
			c.cores.MoveToFront(el)
			return true
		}
	}
	return false
}

func matches(core *unsatCore, have map[*expr.Term]struct{}, bounds map[string]interval.Interval, def interval.Interval) bool {
	if len(core.conjuncts) > len(have) {
		return false
	}
	for t := range core.conjuncts {
		if _, ok := have[t]; !ok {
			return false
		}
	}
	for name, civ := range core.bounds {
		qiv := def
		if iv, ok := bounds[name]; ok {
			qiv = iv
		}
		if !contains(civ, qiv) {
			return false
		}
	}
	return true
}

// contains reports outer ⊇ inner (an empty inner is contained in anything).
func contains(outer, inner interval.Interval) bool {
	return inner.IsEmpty() || (outer.Lo <= inner.Lo && inner.Hi <= outer.Hi)
}

// conjunctSet decomposes f into its top-level conjuncts (f itself when it
// is not a conjunction). Terms are interned, so the pointers identify the
// conjuncts structurally.
func conjunctSet(f *expr.Term) map[*expr.Term]struct{} {
	set := make(map[*expr.Term]struct{})
	if f.Op == expr.OpAnd {
		for _, a := range f.Args {
			set[a] = struct{}{}
		}
	} else {
		set[f] = struct{}{}
	}
	return set
}

// BoundsKey renders a bounds map canonically, default domain included.
// Exported for the incremental SMT context, which keys its per-bounds-box
// solving state exactly the way the cache keys verdicts.
func BoundsKey(bounds map[string]interval.Interval, def interval.Interval) string {
	return boundsKey(bounds, def)
}

// boundsKey renders a bounds map canonically. The default domain is part
// of the key: it determines both the verdict (domains of unlisted
// variables) and the model that fillModel produces.
func boundsKey(bounds map[string]interval.Interval, def interval.Interval) string {
	var b strings.Builder
	b.WriteString("d")
	writeIv(&b, def)
	if len(bounds) == 0 {
		return b.String()
	}
	names := make([]string, 0, len(bounds))
	for name := range bounds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.WriteByte(';')
		b.WriteString(name)
		writeIv(&b, bounds[name])
	}
	return b.String()
}

func writeIv(b *strings.Builder, iv interval.Interval) {
	b.WriteByte(':')
	b.WriteString(strconv.FormatInt(iv.Lo, 10))
	b.WriteByte(':')
	b.WriteString(strconv.FormatInt(iv.Hi, 10))
}
