package cache

import (
	"fmt"
	"sync"
	"testing"

	"cpr/internal/expr"
	"cpr/internal/interval"
)

// TestExportImportDeltaRoundtripConcurrent drives Export/Import the way
// the shard layer does — repeated delta exchanges while other goroutines
// keep writing — and checks that every verdict that made it into an export
// lands intact in the importing cache, with models preserved.
func TestExportImportDeltaRoundtripConcurrent(t *testing.T) {
	src := New(Options{})
	dst := New(Options{})
	b := map[string]interval.Interval{"x": interval.New(0, 1000)}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f := expr.Gt(expr.IntVar(fmt.Sprintf("x%d_%d", w, i%64)), expr.Int(int64(i%32)))
				if i%3 == 0 {
					src.Store(f, b, def, Value{Sat: false})
				} else {
					src.Store(f, b, def, Value{Sat: true, Model: expr.Model{"x": int64(i)}})
				}
			}
		}(w)
	}

	// Delta exchanges under fire: each round exports whatever is retained,
	// filters against what was already shipped, and imports the remainder.
	sent := make(map[Key]bool)
	for round := 0; round < 20; round++ {
		ex := src.Export()
		var delta Export
		for _, e := range ex.Entries {
			k := EntryKey(e.F, e.Bounds)
			if sent[k] {
				continue
			}
			sent[k] = true
			delta.Entries = append(delta.Entries, e)
		}
		present := make(map[Key]bool, len(delta.Entries))
		for _, e := range delta.Entries {
			present[EntryKey(e.F, e.Bounds)] = true
		}
		for _, c := range ex.Cores {
			if present[EntryKey(c.F, c.Bounds)] {
				delta.Cores = append(delta.Cores, c)
			}
		}
		if err := dst.Import(delta); err != nil {
			t.Fatalf("round %d: import: %v", round, err)
		}
		// Everything in this delta must now answer from dst (unless its
		// own volume evicted it — bounded caches may drop oldest-first).
		for _, e := range delta.Entries {
			def2, bounds2, err := ParseBoundsKey(e.Bounds)
			if err != nil {
				t.Fatalf("exported bounds key unparseable: %v", err)
			}
			sat, ok := dst.LookupVerdict(e.F, bounds2, def2)
			if ok && sat != e.Value.Sat {
				t.Fatalf("round %d: imported verdict flipped: want sat=%v", round, e.Value.Sat)
			}
		}
	}
	close(stop)
	wg.Wait()

	// A final quiescent roundtrip into a fresh cache must be faithful
	// entry-for-entry.
	final := src.Export()
	fresh := New(Options{})
	if err := fresh.Import(final); err != nil {
		t.Fatal(err)
	}
	for _, e := range final.Entries {
		def2, bounds2, err := ParseBoundsKey(e.Bounds)
		if err != nil {
			t.Fatal(err)
		}
		sat, ok := fresh.LookupVerdict(e.F, bounds2, def2)
		if !ok || sat != e.Value.Sat {
			t.Fatalf("quiescent roundtrip lost or flipped an entry (ok=%v sat=%v want %v)", ok, sat, e.Value.Sat)
		}
		if e.Value.Model != nil {
			v, ok := fresh.Lookup(e.F, bounds2, def2)
			if !ok || v.Model == nil {
				t.Fatal("quiescent roundtrip dropped a model")
			}
		}
	}
}

// TestImportDoesNotResurrectInvalidatedCore models the cross-shard race
// the retraction protocol exists for: shard A exports an unsat entry, then
// invalidates it (the guard caught its solver lying); an export taken
// before the invalidation must not let shard B keep — or re-send — the
// withdrawn verdict once the retraction arrives.
func TestImportDoesNotResurrectInvalidatedCore(t *testing.T) {
	b := map[string]interval.Interval{"x": interval.New(0, 10)}
	f := expr.And(expr.Gt(x(), expr.Int(5)), expr.Lt(x(), expr.Int(3)))

	src := New(Options{})
	src.TrackInvalidations()
	src.Store(f, b, def, Value{Sat: false})
	stale := src.Export() // delta shipped before the invalidation

	dst := New(Options{})
	if err := dst.Import(stale); err != nil {
		t.Fatal(err)
	}
	if sat, ok := dst.LookupVerdict(f, b, def); !ok || sat {
		t.Fatal("import did not deliver the unsat entry")
	}
	// The core generalizes on dst, as it did on src.
	super := expr.And(expr.Gt(x(), expr.Int(5)), expr.Lt(x(), expr.Int(3)), expr.Gt(y(), expr.Int(0)))
	if sat, ok := dst.LookupVerdict(super, b, def); !ok || sat {
		t.Fatal("imported core does not subsume")
	}

	// Source withdraws the verdict; the recorded retraction reaches dst.
	src.Invalidate(f, b, def)
	retractions := src.DrainInvalidations()
	if len(retractions) != 1 {
		t.Fatalf("want 1 recorded invalidation, got %d", len(retractions))
	}
	for _, k := range retractions {
		dst.InvalidateKey(k)
	}
	if _, ok := dst.LookupVerdict(f, b, def); ok {
		t.Fatal("withdrawn entry still answers on the importer")
	}
	if _, ok := dst.LookupVerdict(super, b, def); ok {
		t.Fatal("withdrawn core still subsumes on the importer")
	}

	// Re-importing the stale export replays the entry — that is the
	// exporter's sent-set's job to prevent — but a second retraction pass
	// must still withdraw it; retraction application is idempotent.
	if err := dst.Import(stale); err != nil {
		t.Fatal(err)
	}
	for _, k := range retractions {
		dst.InvalidateKey(k)
	}
	if _, ok := dst.LookupVerdict(f, b, def); ok {
		t.Fatal("stale re-import resurrected the withdrawn verdict past a retraction")
	}

	// A post-invalidation export no longer carries the entry or its core:
	// fresh importers never see the withdrawn verdict at all.
	clean := src.Export()
	for _, e := range clean.Entries {
		if EntryKey(e.F, e.Bounds) == EntryKey(f, BoundsKey(b, def)) {
			t.Fatal("export still carries the invalidated entry")
		}
	}
	if len(clean.Cores) != 0 {
		t.Fatalf("export still carries %d cores after invalidation", len(clean.Cores))
	}
	drained := src.DrainInvalidations()
	if len(drained) != 0 {
		t.Fatalf("drain not cleared: %d", len(drained))
	}
}

// TestDrainInvalidationsOnlyRecordsRemovals checks that no-op
// invalidations (unknown keys) do not generate retraction traffic.
func TestDrainInvalidationsOnlyRecordsRemovals(t *testing.T) {
	c := New(Options{})
	c.TrackInvalidations()
	c.Invalidate(expr.Gt(x(), expr.Int(1)), nil, def) // never stored
	if got := c.DrainInvalidations(); len(got) != 0 {
		t.Fatalf("no-op invalidation recorded: %d", len(got))
	}
	f := expr.Gt(x(), expr.Int(2))
	c.Store(f, nil, def, Value{Sat: true, Model: expr.Model{"x": 3}})
	c.Invalidate(f, nil, def)
	if got := c.DrainInvalidations(); len(got) != 1 {
		t.Fatalf("removal not recorded: %d", len(got))
	}
}
