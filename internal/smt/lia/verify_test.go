package lia

import (
	"testing"

	"cpr/internal/interval"
)

// Verify is the theory tier's self-check, run on every LIA model under
// paranoid validation: the model must assign every bounded variable
// in-range and satisfy every constraint literally.
func TestVerify(t *testing.T) {
	p := Problem{
		Cons: []Constraint{
			// x + 2y ≤ 10
			{Terms: []Term{{Coef: 1, Vars: []string{"x"}}, {Coef: 2, Vars: []string{"y"}}}, K: 10, Rel: RelLe},
			// x·y = 6
			{Terms: []Term{{Coef: 1, Vars: []string{"x", "y"}}}, K: 6, Rel: RelEq},
			// x ≠ 1
			{Terms: []Term{{Coef: 1, Vars: []string{"x"}}}, K: 1, Rel: RelNe},
		},
		Bounds: map[string]interval.Interval{
			"x": interval.New(0, 10),
			"y": interval.New(0, 10),
		},
	}

	cases := []struct {
		name  string
		model map[string]int64
		want  bool
	}{
		{"satisfying model", map[string]int64{"x": 2, "y": 3}, true},
		{"violates Le", map[string]int64{"x": 6, "y": 3}, false},
		{"violates Eq", map[string]int64{"x": 3, "y": 3}, false},
		{"violates Ne", map[string]int64{"x": 1, "y": 6}, false},
		{"out of bounds", map[string]int64{"x": 2, "y": -3}, false},
		{"missing variable", map[string]int64{"x": 2}, false},
		{"bit-flipped value", map[string]int64{"x": 2, "y": 3 + (1 << 40)}, false},
	}
	for _, tc := range cases {
		if got := Verify(p, tc.model); got != tc.want {
			t.Errorf("%s: Verify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestVerifyEmptyProblem(t *testing.T) {
	if !Verify(Problem{}, nil) {
		t.Fatal("empty problem must accept any model")
	}
}
