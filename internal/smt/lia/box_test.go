package lia

import (
	"errors"
	"math/rand"
	"testing"

	"cpr/internal/interval"
)

func TestBoxMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	names := []string{"x", "y", "z"}
	bounds := map[string]interval.Interval{
		"x": interval.New(-20, 20),
		"y": interval.New(-20, 20),
		"z": interval.New(0, 15),
	}
	box := NewBox(bounds)
	randCons := func() []Constraint {
		n := 1 + rng.Intn(4)
		cons := make([]Constraint, n)
		for i := range cons {
			terms := make([]Term, 1+rng.Intn(2))
			for j := range terms {
				terms[j] = Term{Coef: int64(rng.Intn(7) - 3), Vars: []string{names[rng.Intn(len(names))]}}
				if terms[j].Coef == 0 {
					terms[j].Coef = 1
				}
			}
			cons[i] = Constraint{Terms: terms, K: int64(rng.Intn(41) - 20), Rel: Rel(rng.Intn(3))}
		}
		return cons
	}
	for trial := 0; trial < 200; trial++ {
		cons := randCons()
		want, werr := Solve(Problem{Cons: cons, Bounds: bounds}, Options{})
		got, gerr := box.Solve(cons, Options{})
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if want.Status != got.Status {
			t.Fatalf("trial %d: Solve=%v Box.Solve=%v for %v", trial, want.Status, got.Status, cons)
		}
		if got.Status == Sat {
			// The box model must actually satisfy its own verdict contract:
			// every bounded variable assigned within its domain.
			for v, iv := range bounds {
				val, ok := got.Model[v]
				if !ok || val < iv.Lo || val > iv.Hi {
					t.Fatalf("trial %d: model %v misses/violates %s in %v", trial, got.Model, v, iv)
				}
			}
		}
	}
}

func TestBoxScratchIsolation(t *testing.T) {
	// A query that tightens bounds during propagation must not leak the
	// tightening into later queries.
	box := NewBox(map[string]interval.Interval{"x": interval.New(-100, 100)})
	tight := []Constraint{{Terms: []Term{{Coef: 1, Vars: []string{"x"}}}, K: 0, Rel: RelLe}} // x ≤ 0
	if res, err := box.Solve(tight, Options{}); err != nil || res.Status != Sat {
		t.Fatalf("tight solve: %v %v", res.Status, err)
	}
	// x = 50 is inside the original box; a leaked x ≤ 0 would refute it.
	eq := []Constraint{{Terms: []Term{{Coef: 1, Vars: []string{"x"}}}, K: 50, Rel: RelEq}}
	res, err := box.Solve(eq, Options{})
	if err != nil || res.Status != Sat || res.Model["x"] != 50 {
		t.Fatalf("scratch leaked: %v %v %v", res.Status, res.Model, err)
	}
}

func TestBoxExtend(t *testing.T) {
	box := NewBox(map[string]interval.Interval{"x": interval.New(0, 10)})
	cons := []Constraint{{Terms: []Term{{Coef: 1, Vars: []string{"y"}}}, K: 3, Rel: RelEq}}
	if _, err := box.Solve(cons, Options{}); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("expected ErrUnbounded before Extend, got %v", err)
	}
	box.Extend("y", interval.New(0, 5))
	res, err := box.Solve(cons, Options{})
	if err != nil || res.Status != Sat || res.Model["y"] != 3 || res.Model["x"] != 0 {
		t.Fatalf("after Extend: %v %v %v", res.Status, res.Model, err)
	}
}

func TestBoxEmptyDomain(t *testing.T) {
	box := NewBox(map[string]interval.Interval{"x": interval.New(5, 2)})
	res, err := box.Solve(nil, Options{})
	if err != nil || res.Status != Unsat {
		t.Fatalf("empty domain: %v %v", res.Status, err)
	}
}
