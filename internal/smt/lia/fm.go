package lia

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"cpr/internal/interval"
)

// ratCon is a rational constraint Σ Coef[v]·v ≤ K.
type ratCon struct {
	coef map[string]*big.Rat
	k    *big.Rat
}

func (c ratCon) key() string {
	vars := make([]string, 0, len(c.coef))
	for v := range c.coef {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	for _, v := range vars {
		fmt.Fprintf(&b, "%s:%s;", v, c.coef[v].RatString())
	}
	fmt.Fprintf(&b, "<=%s", c.k.RatString())
	return b.String()
}

// solveLinear decides a conjunction of linear constraints (degree ≤ 1
// monomials) with the FM relaxation plus branch-and-bound. Nonlinear
// monomials must have been eliminated by enumeration beforehand.
func (s *solver) solveLinear(cons []Constraint, bounds map[string]interval.Interval) (Result, error) {
	if err := s.step(); err != nil {
		return Result{}, err
	}
	// Collect occurring variables.
	varSet := make(map[string]bool)
	for _, c := range cons {
		for _, t := range c.Terms {
			varSet[t.Vars[0]] = true
		}
	}
	vars := make([]string, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Strings(vars)

	// Build the rational system: Le/Eq constraints plus variable bounds.
	var rats []ratCon
	var nes []Constraint
	for _, c := range cons {
		switch c.Rel {
		case RelLe:
			rats = append(rats, toRat(c, 1))
		case RelEq:
			rats = append(rats, toRat(c, 1), toRat(c, -1))
		case RelNe:
			nes = append(nes, c)
		}
	}
	for _, v := range vars {
		iv := bounds[v]
		up := ratCon{coef: map[string]*big.Rat{v: big.NewRat(1, 1)}, k: new(big.Rat).SetInt64(iv.Hi)}
		lo := ratCon{coef: map[string]*big.Rat{v: big.NewRat(-1, 1)}, k: new(big.Rat).SetInt64(-iv.Lo)}
		rats = append(rats, up, lo)
	}

	sample, feasible, err := s.fmSample(rats, vars)
	if err != nil {
		return Result{}, err
	}
	if !feasible {
		return Result{Status: Unsat}, nil
	}

	// Branch on a fractional component, if any.
	for _, v := range vars {
		r := sample[v]
		if r.IsInt() {
			continue
		}
		fl := ratFloor(r)
		left := copyBounds(bounds)
		iv := left[v]
		if fl < iv.Hi {
			iv.Hi = fl
		}
		left[v] = iv
		if !iv.IsEmpty() {
			res, err := s.solve(cons, left)
			if err != nil || res.Status == Sat {
				return res, err
			}
		}
		right := copyBounds(bounds)
		iv = right[v]
		if fl+1 > iv.Lo {
			iv.Lo = fl + 1
		}
		right[v] = iv
		if iv.IsEmpty() {
			return Result{Status: Unsat}, nil
		}
		return s.solve(cons, right)
	}

	// Integral sample: build the model and check disequalities. Variables
	// whose constraints were discharged by propagation take any value from
	// their (tightened) bounds — crucially the bounds in scope here, which
	// already reflect dropped constraints.
	model := make(map[string]int64, len(bounds))
	for _, v := range vars {
		model[v] = ratInt(sample[v])
	}
	for v, bIv := range bounds {
		if _, ok := model[v]; !ok {
			model[v] = clampToward(0, bIv)
		}
	}
	for _, ne := range nes {
		val := evalTerms(ne.Terms, model)
		if val.Cmp(big.NewInt(ne.K)) != 0 {
			continue
		}
		// Violated: branch Σ ≤ K−1 ∨ Σ ≥ K+1 (i.e. −Σ ≤ −K−1).
		leftC := Constraint{Terms: ne.Terms, K: ne.K - 1, Rel: RelLe}
		res, err := s.solve(append(cloneCons(cons), leftC), copyBounds(bounds))
		if err != nil || res.Status == Sat {
			return res, err
		}
		neg := make([]Term, len(ne.Terms))
		for i, t := range ne.Terms {
			neg[i] = Term{Coef: -t.Coef, Vars: t.Vars}
		}
		rightC := Constraint{Terms: neg, K: -ne.K - 1, Rel: RelLe}
		return s.solve(append(cloneCons(cons), rightC), copyBounds(bounds))
	}
	return Result{Status: Sat, Model: model}, nil
}

func toRat(c Constraint, sign int64) ratCon {
	rc := ratCon{coef: make(map[string]*big.Rat, len(c.Terms)), k: new(big.Rat).SetInt64(sign * c.K)}
	for _, t := range c.Terms {
		v := t.Vars[0]
		cur, ok := rc.coef[v]
		if !ok {
			cur = new(big.Rat)
			rc.coef[v] = cur
		}
		cur.Add(cur, new(big.Rat).SetInt64(sign*t.Coef))
	}
	for v, r := range rc.coef {
		if r.Sign() == 0 {
			delete(rc.coef, v)
		}
	}
	return rc
}

// fmSample eliminates vars one by one, then back-substitutes a rational
// sample point. It reports infeasibility of the rational relaxation.
func (s *solver) fmSample(cons []ratCon, vars []string) (map[string]*big.Rat, bool, error) {
	if err := s.step(); err != nil {
		return nil, false, err
	}
	if len(vars) == 0 {
		for _, c := range cons {
			if len(c.coef) != 0 {
				panic("lia: fmSample: leftover variable")
			}
			if c.k.Sign() < 0 { // 0 ≤ k fails
				return nil, false, nil
			}
		}
		return map[string]*big.Rat{}, true, nil
	}
	// Pick the variable minimizing the FM blowup (#lower × #upper).
	bestIdx, bestCost := 0, -1
	for i, v := range vars {
		var nl, nu int
		for _, c := range cons {
			if r, ok := c.coef[v]; ok {
				if r.Sign() > 0 {
					nu++
				} else {
					nl++
				}
			}
		}
		cost := nl * nu
		if bestCost < 0 || cost < bestCost {
			bestIdx, bestCost = i, cost
		}
	}
	v := vars[bestIdx]
	rest := make([]string, 0, len(vars)-1)
	rest = append(rest, vars[:bestIdx]...)
	rest = append(rest, vars[bestIdx+1:]...)

	var lowers, uppers, others []ratCon
	for _, c := range cons {
		r, ok := c.coef[v]
		switch {
		case !ok:
			others = append(others, c)
		case r.Sign() > 0:
			uppers = append(uppers, c)
		default:
			lowers = append(lowers, c)
		}
	}
	// Combine lower × upper pairs.
	seen := make(map[string]bool, len(others))
	combined := others
	for _, c := range combined {
		seen[c.key()] = true
	}
	for _, lo := range lowers {
		for _, up := range uppers {
			nc := combineFM(lo, up, v)
			if len(nc.coef) == 0 {
				if nc.k.Sign() < 0 {
					return nil, false, nil // immediate contradiction
				}
				continue
			}
			k := nc.key()
			if !seen[k] {
				seen[k] = true
				combined = append(combined, nc)
				if len(combined) > s.opts.MaxConstraints {
					return nil, false, ErrBudget
				}
			}
		}
	}
	sample, feasible, err := s.fmSample(combined, rest)
	if err != nil || !feasible {
		return nil, feasible, err
	}
	// Back-substitute: v ∈ [max lowers, min uppers] under sample.
	var lo, hi *big.Rat
	for _, c := range lowers {
		b := boundAt(c, v, sample)
		if lo == nil || b.Cmp(lo) > 0 {
			lo = b
		}
	}
	for _, c := range uppers {
		b := boundAt(c, v, sample)
		if hi == nil || b.Cmp(hi) < 0 {
			hi = b
		}
	}
	sample[v] = pickRat(lo, hi)
	return sample, true, nil
}

// combineFM eliminates v from lower (coef<0) and upper (coef>0).
func combineFM(lo, up ratCon, v string) ratCon {
	cl := lo.coef[v]           // negative
	cu := up.coef[v]           // positive
	ml := new(big.Rat).Set(cu) // multiplier for lo
	mu := new(big.Rat).Neg(cl) // multiplier for up (positive)
	out := ratCon{coef: make(map[string]*big.Rat), k: new(big.Rat)}
	add := func(c ratCon, m *big.Rat) {
		for name, r := range c.coef {
			if name == v {
				continue
			}
			cur, ok := out.coef[name]
			if !ok {
				cur = new(big.Rat)
				out.coef[name] = cur
			}
			cur.Add(cur, new(big.Rat).Mul(m, r))
		}
		out.k.Add(out.k, new(big.Rat).Mul(m, c.k))
	}
	add(lo, ml)
	add(up, mu)
	for name, r := range out.coef {
		if r.Sign() == 0 {
			delete(out.coef, name)
		}
	}
	return out
}

// boundAt computes the bound on v induced by c under the sample: for
// Σ coef·x ≤ k, isolate v: v ⋚ (k − Σ_{x≠v} coef·x)/coef[v].
func boundAt(c ratCon, v string, sample map[string]*big.Rat) *big.Rat {
	num := new(big.Rat).Set(c.k)
	for name, r := range c.coef {
		if name == v {
			continue
		}
		num.Sub(num, new(big.Rat).Mul(r, sample[name]))
	}
	return num.Quo(num, c.coef[v])
}

// pickRat chooses a value in [lo, hi] (either may be nil for ±∞),
// preferring an integer near zero.
func pickRat(lo, hi *big.Rat) *big.Rat {
	switch {
	case lo == nil && hi == nil:
		return new(big.Rat)
	case lo == nil:
		f := ratFloor(hi)
		if f > 0 {
			f = 0
		}
		return new(big.Rat).SetInt64(f)
	case hi == nil:
		cl := ratCeil(lo)
		if cl < 0 {
			cl = 0
		}
		return new(big.Rat).SetInt64(cl)
	}
	cl, fh := ratCeil(lo), ratFloor(hi)
	if cl <= fh {
		pref := int64(0)
		if pref < cl {
			pref = cl
		}
		if pref > fh {
			pref = fh
		}
		return new(big.Rat).SetInt64(pref)
	}
	mid := new(big.Rat).Add(lo, hi)
	return mid.Quo(mid, big.NewRat(2, 1))
}

func ratFloor(r *big.Rat) int64 {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if r.Sign() < 0 && !r.IsInt() {
		q.Sub(q, big.NewInt(1))
	}
	return q.Int64()
}

func ratCeil(r *big.Rat) int64 {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if r.Sign() > 0 && !r.IsInt() {
		q.Add(q, big.NewInt(1))
	}
	return q.Int64()
}

func ratInt(r *big.Rat) int64 {
	if !r.IsInt() {
		panic("lia: ratInt: not an integer")
	}
	return r.Num().Int64()
}

// evalTerms evaluates Σ Coef·Π vars under an integer model, exactly.
func evalTerms(terms []Term, model map[string]int64) *big.Int {
	sum := new(big.Int)
	for _, t := range terms {
		p := big.NewInt(t.Coef)
		for _, v := range t.Vars {
			p.Mul(p, big.NewInt(model[v]))
		}
		sum.Add(sum, p)
	}
	return sum
}
