// Package lia decides conjunctions of (quasi-)linear integer arithmetic
// constraints over bounded variables and produces models.
//
// The decision procedure layers:
//
//  1. interval bound propagation (cheap pruning and many UNSAT answers),
//  2. enumeration of small-domain variables occurring in nonlinear
//     monomials (patch parameters have box bounds, so products such as
//     x*a become linear after enumerating a),
//  3. a Fourier–Motzkin rational relaxation with exact big.Rat
//     arithmetic, and
//  4. branch-and-bound on fractional sample components and violated
//     disequalities.
//
// Every variable must be bounded (program integers are 32-bit, patch
// parameters live in boxes), which makes the procedure a complete decision
// procedure for the fragment the repair system generates.
package lia

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"cpr/internal/interval"
)

// Rel is a constraint relation.
type Rel uint8

// Constraint relations: Σ terms ⋈ K.
const (
	RelLe Rel = iota // Σ ≤ K
	RelEq            // Σ = K
	RelNe            // Σ ≠ K
)

func (r Rel) String() string {
	switch r {
	case RelLe:
		return "<="
	case RelEq:
		return "="
	case RelNe:
		return "!="
	}
	return "?"
}

// Term is a monomial with an integer coefficient: Coef · Π Vars. Vars is
// sorted and non-empty; repeated names denote powers.
type Term struct {
	Coef int64
	Vars []string
}

// Constraint is Σ Terms ⋈ K.
type Constraint struct {
	Terms []Term
	K     int64
	Rel   Rel
}

// String renders the constraint for diagnostics.
func (c Constraint) String() string {
	var b strings.Builder
	for i, t := range c.Terms {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%d·%s", t.Coef, strings.Join(t.Vars, "·"))
	}
	if len(c.Terms) == 0 {
		b.WriteString("0")
	}
	fmt.Fprintf(&b, " %s %d", c.Rel, c.K)
	return b.String()
}

// Problem is a conjunction of constraints plus finite bounds for every
// variable that occurs. Variables present in Bounds but not in any
// constraint are still assigned in the model.
type Problem struct {
	Cons   []Constraint
	Bounds map[string]interval.Interval
}

// Status is a solver verdict.
type Status int8

// Verdicts.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Result carries the verdict and, when Sat, a model.
type Result struct {
	Status Status
	Model  map[string]int64
}

// Options tunes the solver.
type Options struct {
	// EnumLimit bounds the domain size of a variable enumerated to
	// linearize nonlinear monomials. Default 4096.
	EnumLimit int64
	// MaxSteps bounds total search nodes. Default 200000.
	MaxSteps int
	// MaxConstraints bounds the constraint count during FM elimination.
	// Default 200000.
	MaxConstraints int
	// Stop, when non-nil, is polled periodically inside the
	// branch-and-bound/enumeration loop; a true return aborts the query
	// with ErrBudget. The SMT layer uses it for per-query deadlines.
	Stop func() bool
}

func (o Options) withDefaults() Options {
	if o.EnumLimit == 0 {
		o.EnumLimit = 4096
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 200000
	}
	if o.MaxConstraints == 0 {
		o.MaxConstraints = 200000
	}
	return o
}

// ErrBudget is returned when the solver exceeds its resource limits.
var ErrBudget = errors.New("lia: resource budget exhausted")

// ErrUnbounded is returned when a variable lacks bounds.
var ErrUnbounded = errors.New("lia: unbounded variable")

type solver struct {
	opts  Options
	steps int
}

// Solve decides the problem. It returns ErrBudget when limits are hit and
// ErrUnbounded when a constraint mentions a variable missing from Bounds.
func Solve(p Problem, opts Options) (Result, error) {
	s := &solver{opts: opts.withDefaults()}
	for _, c := range p.Cons {
		for _, t := range c.Terms {
			for _, v := range t.Vars {
				if _, ok := p.Bounds[v]; !ok {
					return Result{}, fmt.Errorf("%w: %s", ErrUnbounded, v)
				}
			}
		}
	}
	bounds := make(map[string]interval.Interval, len(p.Bounds))
	for v, iv := range p.Bounds {
		if iv.IsEmpty() {
			return Result{Status: Unsat}, nil
		}
		bounds[v] = iv
	}
	res, err := s.solve(cloneCons(p.Cons), bounds)
	if err != nil {
		return Result{}, err
	}
	if res.Status == Sat {
		// Assign variables that never occurred in constraints.
		for v, iv := range p.Bounds {
			if _, ok := res.Model[v]; !ok {
				res.Model[v] = clampToward(0, iv)
			}
		}
	}
	return res, nil
}

func cloneCons(cons []Constraint) []Constraint {
	out := make([]Constraint, len(cons))
	for i, c := range cons {
		ts := make([]Term, len(c.Terms))
		for j, t := range c.Terms {
			vs := make([]string, len(t.Vars))
			copy(vs, t.Vars)
			ts[j] = Term{Coef: t.Coef, Vars: vs}
		}
		out[i] = Constraint{Terms: ts, K: c.K, Rel: c.Rel}
	}
	return out
}

func clampToward(pref int64, iv interval.Interval) int64 {
	if pref < iv.Lo {
		return iv.Lo
	}
	if pref > iv.Hi {
		return iv.Hi
	}
	return pref
}

func (s *solver) step() error {
	s.steps++
	if s.steps > s.opts.MaxSteps {
		return fmt.Errorf("%w: %d search steps", ErrBudget, s.steps-1)
	}
	if s.opts.Stop != nil && s.steps%256 == 0 && s.opts.Stop() {
		return fmt.Errorf("%w: cancelled after %d search steps", ErrBudget, s.steps)
	}
	return nil
}

// ---- saturating interval arithmetic -------------------------------------

const (
	satMax = math.MaxInt64 / 4 // headroom so sums of two sat values stay exact
	satMin = -satMax
)

func satAdd(a, b int64) int64 {
	c := a + b
	if c > satMax {
		return satMax
	}
	if c < satMin {
		return satMin
	}
	return c
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	c := a * b
	if a == c/b && c <= satMax && c >= satMin {
		return c
	}
	if (a > 0) == (b > 0) {
		return satMax
	}
	return satMin
}

func clampIv(iv interval.Interval) interval.Interval {
	if iv.Lo < satMin {
		iv.Lo = satMin
	}
	if iv.Hi > satMax {
		iv.Hi = satMax
	}
	return iv
}

func mulIv(a, b interval.Interval) interval.Interval {
	p1 := satMul(a.Lo, b.Lo)
	p2 := satMul(a.Lo, b.Hi)
	p3 := satMul(a.Hi, b.Lo)
	p4 := satMul(a.Hi, b.Hi)
	lo, hi := p1, p1
	for _, p := range []int64{p2, p3, p4} {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	return interval.Interval{Lo: lo, Hi: hi}
}

// monoRange returns the interval of a monomial under bounds.
func monoRange(vars []string, bounds map[string]interval.Interval) interval.Interval {
	iv := interval.Point(1)
	for _, v := range vars {
		iv = mulIv(iv, clampIv(bounds[v]))
	}
	return iv
}

// termRange returns the interval of Coef·mono.
func termRange(t Term, bounds map[string]interval.Interval) interval.Interval {
	return mulIv(interval.Point(t.Coef), monoRange(t.Vars, bounds))
}

// ---- main recursive solve ------------------------------------------------

func (s *solver) solve(cons []Constraint, bounds map[string]interval.Interval) (Result, error) {
	if err := s.step(); err != nil {
		return Result{}, err
	}
	cons, st := propagate(cons, bounds)
	if st == Unsat {
		return Result{Status: Unsat}, nil
	}
	// Enumerate a variable appearing in nonlinear monomials, if any.
	if v, ok := pickNonlinearVar(cons, bounds); ok {
		iv := bounds[v]
		if iv.Count() > s.opts.EnumLimit {
			return Result{}, fmt.Errorf("%w: domain of %s too large (%d) to linearize", ErrBudget, v, iv.Count())
		}
		for val := iv.Lo; ; val++ {
			if err := s.step(); err != nil {
				return Result{}, err
			}
			sub := substitute(cons, v, val)
			nb := copyBounds(bounds)
			nb[v] = interval.Point(val)
			res, err := s.solve(sub, nb)
			if err != nil {
				return Result{}, err
			}
			if res.Status == Sat {
				res.Model[v] = val
				return res, nil
			}
			if val == iv.Hi {
				break
			}
		}
		return Result{Status: Unsat}, nil
	}
	return s.solveLinear(cons, bounds)
}

// pickNonlinearVar returns a variable occurring in a monomial of degree
// ≥ 2, preferring the smallest domain.
func pickNonlinearVar(cons []Constraint, bounds map[string]interval.Interval) (string, bool) {
	best := ""
	var bestCount int64
	for _, c := range cons {
		for _, t := range c.Terms {
			if len(t.Vars) < 2 {
				continue
			}
			for _, v := range t.Vars {
				cnt := bounds[v].Count()
				if best == "" || cnt < bestCount {
					best, bestCount = v, cnt
				}
			}
		}
	}
	return best, best != ""
}

// substitute fixes v := val in all constraints.
func substitute(cons []Constraint, v string, val int64) []Constraint {
	out := make([]Constraint, 0, len(cons))
	for _, c := range cons {
		nc := Constraint{K: c.K, Rel: c.Rel}
		for _, t := range c.Terms {
			coef := t.Coef
			var rest []string
			for _, tv := range t.Vars {
				if tv == v {
					coef = satMul(coef, val)
				} else {
					rest = append(rest, tv)
				}
			}
			if len(rest) == 0 {
				nc.K -= coef // constant moves to the right-hand side
				continue
			}
			nc.Terms = append(nc.Terms, Term{Coef: coef, Vars: rest})
		}
		nc = combineLike(nc)
		out = append(out, nc)
	}
	return out
}

// combineLike merges terms with identical monomials and drops zeros.
func combineLike(c Constraint) Constraint {
	byKey := make(map[string]*Term)
	var order []string
	for _, t := range c.Terms {
		k := strings.Join(t.Vars, "\x00")
		if e, ok := byKey[k]; ok {
			e.Coef += t.Coef
		} else {
			nt := t
			byKey[k] = &nt
			order = append(order, k)
		}
	}
	out := Constraint{K: c.K, Rel: c.Rel}
	for _, k := range order {
		if byKey[k].Coef != 0 {
			out.Terms = append(out.Terms, *byKey[k])
		}
	}
	return out
}

func copyBounds(b map[string]interval.Interval) map[string]interval.Interval {
	c := make(map[string]interval.Interval, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// ---- bound propagation ----------------------------------------------------

// propagate tightens bounds from degree-1 terms and evaluates ground
// constraints. It mutates bounds in place and may drop constraints that
// became trivially true. Returns Unsat when a domain empties or a ground
// constraint fails.
func propagate(cons []Constraint, bounds map[string]interval.Interval) ([]Constraint, Status) {
	for pass := 0; pass < 64; pass++ {
		changed := false
		kept := cons[:0:0]
		for _, c := range cons {
			if len(c.Terms) == 0 {
				ok := true
				switch c.Rel {
				case RelLe:
					ok = 0 <= c.K
				case RelEq:
					ok = c.K == 0
				case RelNe:
					ok = c.K != 0
				}
				if !ok {
					return nil, Unsat
				}
				continue // trivially true: drop
			}
			// Whole-constraint range check.
			total := interval.Point(0)
			for _, t := range c.Terms {
				r := termRange(t, bounds)
				total = interval.Interval{Lo: satAdd(total.Lo, r.Lo), Hi: satAdd(total.Hi, r.Hi)}
			}
			switch c.Rel {
			case RelLe:
				if total.Lo > c.K {
					return nil, Unsat
				}
				if total.Hi <= c.K {
					continue // always true: drop
				}
			case RelEq:
				if total.Lo > c.K || total.Hi < c.K {
					return nil, Unsat
				}
			case RelNe:
				if total.Lo == c.K && total.Hi == c.K {
					return nil, Unsat
				}
				if !total.Contains(c.K) {
					continue // always true: drop
				}
			}
			kept = append(kept, c)
			if c.Rel == RelNe {
				continue // no bound tightening from disequalities here
			}
			// Tighten each degree-1 variable.
			for i, t := range c.Terms {
				if len(t.Vars) != 1 {
					continue
				}
				v := t.Vars[0]
				rest := interval.Point(0)
				for j, u := range c.Terms {
					if j == i {
						continue
					}
					r := termRange(u, bounds)
					rest = interval.Interval{Lo: satAdd(rest.Lo, r.Lo), Hi: satAdd(rest.Hi, r.Hi)}
				}
				// Coef·v ≤ K − rest.Lo  (for ≤ and =)
				// Coef·v ≥ K − rest.Hi  (for = only)
				iv := bounds[v]
				upper := satAdd(c.K, -rest.Lo)
				if t.Coef > 0 {
					hi := floorDiv(upper, t.Coef)
					if hi < iv.Hi {
						iv.Hi = hi
						changed = true
					}
				} else {
					lo := ceilDiv(upper, t.Coef)
					if lo > iv.Lo {
						iv.Lo = lo
						changed = true
					}
				}
				if c.Rel == RelEq {
					lower := satAdd(c.K, -rest.Hi)
					if t.Coef > 0 {
						lo := ceilDiv(lower, t.Coef)
						if lo > iv.Lo {
							iv.Lo = lo
							changed = true
						}
					} else {
						hi := floorDiv(lower, t.Coef)
						if hi < iv.Hi {
							iv.Hi = hi
							changed = true
						}
					}
				}
				if iv.IsEmpty() {
					return nil, Unsat
				}
				bounds[v] = iv
			}
		}
		cons = kept
		if !changed {
			break
		}
	}
	return cons, Unknown
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// Verify replays a model against a problem: every variable must lie within
// its bounds and every constraint must hold under direct evaluation. It is
// the LIA tier's verdict-validation hook (paranoid-mode defense in depth):
// a false return means the arithmetic procedure produced an assignment
// that does not satisfy its own constraint system. Variables absent from
// the model fail verification — a sat answer must assign everything.
func Verify(p Problem, model map[string]int64) bool {
	for name, iv := range p.Bounds {
		v, ok := model[name]
		if !ok || v < iv.Lo || v > iv.Hi {
			return false
		}
	}
	for _, c := range p.Cons {
		var sum int64
		for _, t := range c.Terms {
			prod := t.Coef
			for _, name := range t.Vars {
				v, ok := model[name]
				if !ok {
					return false
				}
				prod *= v
			}
			sum += prod
		}
		switch c.Rel {
		case RelLe:
			if sum > c.K {
				return false
			}
		case RelEq:
			if sum != c.K {
				return false
			}
		case RelNe:
			if sum == c.K {
				return false
			}
		}
	}
	return true
}
