package lia

import (
	"fmt"

	"cpr/internal/interval"
)

// Box is a reusable bounds environment for deciding many constraint
// conjunctions over the same variable domains — the shape of the DPLL(T)
// theory loop, where every round re-checks a different support set under
// one bounds box. A Box validates and stores the domains once and reuses
// its bound-propagation scratch map across Solve calls, so the per-query
// cost is the solve itself rather than map rebuilding and re-validation.
//
// A Box is not safe for concurrent use; the incremental SMT context owns
// one per bounds box.
type Box struct {
	bounds  map[string]interval.Interval
	scratch map[string]interval.Interval
	empty   bool
}

// NewBox returns a box over a copy of the given domains.
func NewBox(bounds map[string]interval.Interval) *Box {
	b := &Box{bounds: make(map[string]interval.Interval, len(bounds))}
	for v, iv := range bounds {
		b.Extend(v, iv)
	}
	return b
}

// Extend adds (or overwrites) one variable's domain. Extending mid-stream
// is how the SMT context grows a box as new formulas introduce variables.
func (b *Box) Extend(name string, iv interval.Interval) {
	b.bounds[name] = iv
	if iv.IsEmpty() {
		b.empty = true
	}
}

// Has reports whether the box covers the variable.
func (b *Box) Has(name string) bool {
	_, ok := b.bounds[name]
	return ok
}

// Solve decides the conjunction of cons under the box's domains, exactly
// as Solve(Problem{Cons: cons, Bounds: box domains}, opts) would, reusing
// the box's propagation scratch instead of allocating fresh maps.
func (b *Box) Solve(cons []Constraint, opts Options) (Result, error) {
	for _, c := range cons {
		for _, t := range c.Terms {
			for _, v := range t.Vars {
				if !b.Has(v) {
					return Result{}, fmt.Errorf("%w: %s", ErrUnbounded, v)
				}
			}
		}
	}
	if b.empty {
		return Result{Status: Unsat}, nil
	}
	if b.scratch == nil {
		b.scratch = make(map[string]interval.Interval, len(b.bounds))
	} else {
		clear(b.scratch)
	}
	for v, iv := range b.bounds {
		b.scratch[v] = iv
	}
	s := &solver{opts: opts.withDefaults()}
	res, err := s.solve(cloneCons(cons), b.scratch)
	if err != nil {
		return Result{}, err
	}
	if res.Status == Sat {
		// Assign variables that never occurred in constraints.
		for v, iv := range b.bounds {
			if _, ok := res.Model[v]; !ok {
				res.Model[v] = clampToward(0, iv)
			}
		}
	}
	return res, nil
}
