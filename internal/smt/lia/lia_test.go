package lia

import (
	"errors"
	"math/rand"
	"testing"

	"cpr/internal/interval"
)

func iv(lo, hi int64) interval.Interval { return interval.New(lo, hi) }

func lin(coef int64, v string) Term { return Term{Coef: coef, Vars: []string{v}} }

func solve(t *testing.T, p Problem) Result {
	t.Helper()
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestSimpleSat(t *testing.T) {
	// x + y ≤ 5, x ≥ 3 → sat
	p := Problem{
		Cons: []Constraint{
			{Terms: []Term{lin(1, "x"), lin(1, "y")}, K: 5, Rel: RelLe},
			{Terms: []Term{lin(-1, "x")}, K: -3, Rel: RelLe},
		},
		Bounds: map[string]interval.Interval{"x": iv(-100, 100), "y": iv(-100, 100)},
	}
	res := solve(t, p)
	if res.Status != Sat {
		t.Fatalf("status %v", res.Status)
	}
	if res.Model["x"] < 3 || res.Model["x"]+res.Model["y"] > 5 {
		t.Fatalf("bad model %v", res.Model)
	}
}

func TestSimpleUnsat(t *testing.T) {
	// x + y ≤ 0 ∧ x + y ≥ 1: needs FM, not just propagation.
	p := Problem{
		Cons: []Constraint{
			{Terms: []Term{lin(1, "x"), lin(1, "y")}, K: 0, Rel: RelLe},
			{Terms: []Term{lin(-1, "x"), lin(-1, "y")}, K: -1, Rel: RelLe},
		},
		Bounds: map[string]interval.Interval{"x": iv(-2147483648, 2147483647), "y": iv(-2147483648, 2147483647)},
	}
	if res := solve(t, p); res.Status != Unsat {
		t.Fatalf("status %v, want unsat", res.Status)
	}
}

func TestIntegrality(t *testing.T) {
	// 2x = 1 is rationally feasible but has no integer solution.
	p := Problem{
		Cons:   []Constraint{{Terms: []Term{lin(2, "x")}, K: 1, Rel: RelEq}},
		Bounds: map[string]interval.Interval{"x": iv(-1000, 1000)},
	}
	if res := solve(t, p); res.Status != Unsat {
		t.Fatalf("2x=1 should be unsat over Z, got %v", res.Status)
	}
	// 2x = 1 mixed with y: 2x - 2y = 1.
	p = Problem{
		Cons:   []Constraint{{Terms: []Term{lin(2, "x"), lin(-2, "y")}, K: 1, Rel: RelEq}},
		Bounds: map[string]interval.Interval{"x": iv(-50, 50), "y": iv(-50, 50)},
	}
	if res := solve(t, p); res.Status != Unsat {
		t.Fatalf("2x-2y=1 should be unsat over Z, got %v", res.Status)
	}
}

func TestDisequality(t *testing.T) {
	// x = 3 ∧ x ≠ 3 → unsat; x∈[3,4] ∧ x ≠ 3 → x=4.
	p := Problem{
		Cons: []Constraint{
			{Terms: []Term{lin(1, "x")}, K: 3, Rel: RelEq},
			{Terms: []Term{lin(1, "x")}, K: 3, Rel: RelNe},
		},
		Bounds: map[string]interval.Interval{"x": iv(-10, 10)},
	}
	if res := solve(t, p); res.Status != Unsat {
		t.Fatalf("want unsat, got %v", res.Status)
	}
	p = Problem{
		Cons: []Constraint{
			{Terms: []Term{lin(1, "x")}, K: 3, Rel: RelNe},
		},
		Bounds: map[string]interval.Interval{"x": iv(3, 4)},
	}
	res := solve(t, p)
	if res.Status != Sat || res.Model["x"] != 4 {
		t.Fatalf("want x=4, got %v %v", res.Status, res.Model)
	}
}

func TestNonlinearEnumeration(t *testing.T) {
	// x·a ≥ 50 with a ∈ [-10,10], x ∈ [0, 1000]: sat (e.g. a=1, x=50).
	p := Problem{
		Cons: []Constraint{
			{Terms: []Term{{Coef: -1, Vars: []string{"a", "x"}}}, K: -50, Rel: RelLe},
		},
		Bounds: map[string]interval.Interval{"x": iv(0, 1000), "a": iv(-10, 10)},
	}
	res := solve(t, p)
	if res.Status != Sat {
		t.Fatalf("status %v", res.Status)
	}
	if res.Model["a"]*res.Model["x"] < 50 {
		t.Fatalf("model violates constraint: %v", res.Model)
	}
	// x·a ≥ 50, x ∈ [0,4], a ∈ [0,4]: max product 16 → unsat.
	p.Bounds = map[string]interval.Interval{"x": iv(0, 4), "a": iv(0, 4)}
	if res := solve(t, p); res.Status != Unsat {
		t.Fatalf("want unsat, got %v", res.Status)
	}
}

func TestSquare(t *testing.T) {
	// a² = 49, a ∈ [-10,10]: sat with a = ±7.
	p := Problem{
		Cons:   []Constraint{{Terms: []Term{{Coef: 1, Vars: []string{"a", "a"}}}, K: 49, Rel: RelEq}},
		Bounds: map[string]interval.Interval{"a": iv(-10, 10)},
	}
	res := solve(t, p)
	if res.Status != Sat || res.Model["a"]*res.Model["a"] != 49 {
		t.Fatalf("got %v %v", res.Status, res.Model)
	}
	// a² = 50: unsat.
	p.Cons[0].K = 50
	if res := solve(t, p); res.Status != Unsat {
		t.Fatalf("a²=50 should be unsat, got %v", res.Status)
	}
}

func TestUnboundedVarRejected(t *testing.T) {
	p := Problem{
		Cons:   []Constraint{{Terms: []Term{lin(1, "x")}, K: 0, Rel: RelLe}},
		Bounds: map[string]interval.Interval{},
	}
	if _, err := Solve(p, Options{}); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("want ErrUnbounded, got %v", err)
	}
}

func TestEnumLimit(t *testing.T) {
	p := Problem{
		Cons: []Constraint{
			{Terms: []Term{{Coef: 1, Vars: []string{"x", "y"}}}, K: 0, Rel: RelLe},
		},
		Bounds: map[string]interval.Interval{
			"x": iv(-2147483648, 2147483647),
			"y": iv(-2147483648, 2147483647),
		},
	}
	if _, err := Solve(p, Options{EnumLimit: 64}); !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestEmptyBoundsUnsat(t *testing.T) {
	p := Problem{Bounds: map[string]interval.Interval{"x": interval.Empty()}}
	res := solve(t, p)
	if res.Status != Unsat {
		t.Fatalf("empty domain should be unsat, got %v", res.Status)
	}
}

func TestUnconstrainedVarsGetValues(t *testing.T) {
	p := Problem{Bounds: map[string]interval.Interval{"x": iv(5, 9)}}
	res := solve(t, p)
	if res.Status != Sat || res.Model["x"] < 5 || res.Model["x"] > 9 {
		t.Fatalf("got %v %v", res.Status, res.Model)
	}
}

// bruteSat decides the problem by enumerating all points of the bounds box.
func bruteSat(p Problem, names []string) bool {
	pt := make(map[string]int64, len(names))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(names) {
			for _, c := range p.Cons {
				var sum int64
				for _, t := range c.Terms {
					v := t.Coef
					for _, n := range t.Vars {
						v *= pt[n]
					}
					sum += v
				}
				ok := false
				switch c.Rel {
				case RelLe:
					ok = sum <= c.K
				case RelEq:
					ok = sum == c.K
				case RelNe:
					ok = sum != c.K
				}
				if !ok {
					return false
				}
			}
			return true
		}
		b := p.Bounds[names[i]]
		for v := b.Lo; v <= b.Hi; v++ {
			pt[names[i]] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

func checkModel(t *testing.T, p Problem, m map[string]int64) {
	t.Helper()
	for n, b := range p.Bounds {
		v, ok := m[n]
		if !ok || !b.Contains(v) {
			t.Fatalf("model %v misses or violates bounds of %s", m, n)
		}
	}
	for _, c := range p.Cons {
		var sum int64
		for _, tm := range c.Terms {
			v := tm.Coef
			for _, n := range tm.Vars {
				v *= m[n]
			}
			sum += v
		}
		ok := false
		switch c.Rel {
		case RelLe:
			ok = sum <= c.K
		case RelEq:
			ok = sum == c.K
		case RelNe:
			ok = sum != c.K
		}
		if !ok {
			t.Fatalf("model %v violates %v (sum=%d)", m, c, sum)
		}
	}
}

// TestRandomDifferential compares the solver against brute force over
// small boxes, with linear and mildly nonlinear random systems.
func TestRandomDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	names := []string{"x", "y", "z"}
	for iter := 0; iter < 300; iter++ {
		p := Problem{Bounds: map[string]interval.Interval{}}
		for _, n := range names {
			lo := int64(r.Intn(9) - 4)
			p.Bounds[n] = iv(lo, lo+int64(r.Intn(6)))
		}
		nCons := 1 + r.Intn(4)
		for i := 0; i < nCons; i++ {
			var terms []Term
			nTerms := 1 + r.Intn(3)
			for j := 0; j < nTerms; j++ {
				coef := int64(r.Intn(9) - 4)
				if coef == 0 {
					coef = 1
				}
				vs := []string{names[r.Intn(3)]}
				if r.Intn(5) == 0 { // occasionally nonlinear
					vs = append(vs, names[r.Intn(3)])
					if vs[0] > vs[1] {
						vs[0], vs[1] = vs[1], vs[0]
					}
				}
				terms = append(terms, Term{Coef: coef, Vars: vs})
			}
			p.Cons = append(p.Cons, Constraint{
				Terms: terms,
				K:     int64(r.Intn(21) - 10),
				Rel:   Rel(r.Intn(3)),
			})
		}
		res, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("iter %d: %v (problem %+v)", iter, err, p)
		}
		want := bruteSat(p, names)
		if (res.Status == Sat) != want {
			t.Fatalf("iter %d: solver=%v brute=%v problem=%+v", iter, res.Status, want, p)
		}
		if res.Status == Sat {
			checkModel(t, p, res.Model)
		}
	}
}

// TestWideBoundsLinear exercises 32-bit-style bounds where enumeration is
// impossible and FM must carry the weight.
func TestWideBoundsLinear(t *testing.T) {
	const lo, hi = -2147483648, 2147483647
	// 3x + 5y = 1 has integer solutions (x=2, y=-1).
	p := Problem{
		Cons:   []Constraint{{Terms: []Term{lin(3, "x"), lin(5, "y")}, K: 1, Rel: RelEq}},
		Bounds: map[string]interval.Interval{"x": iv(lo, hi), "y": iv(lo, hi)},
	}
	res := solve(t, p)
	if res.Status != Sat {
		t.Fatalf("3x+5y=1 should be sat, got %v", res.Status)
	}
	if 3*res.Model["x"]+5*res.Model["y"] != 1 {
		t.Fatalf("bad model %v", res.Model)
	}
	// x > y ∧ y > x is unsat.
	p = Problem{
		Cons: []Constraint{
			{Terms: []Term{lin(-1, "x"), lin(1, "y")}, K: -1, Rel: RelLe}, // y - x ≤ -1: x > y
			{Terms: []Term{lin(1, "x"), lin(-1, "y")}, K: -1, Rel: RelLe}, // x - y ≤ -1: y > x
		},
		Bounds: map[string]interval.Interval{"x": iv(lo, hi), "y": iv(lo, hi)},
	}
	if res := solve(t, p); res.Status != Unsat {
		t.Fatalf("x>y ∧ y>x should be unsat, got %v", res.Status)
	}
}

func BenchmarkLinearChain(b *testing.B) {
	// x1 ≤ x2 ≤ ... ≤ x8, x8 ≤ x1 - 1 (unsat chain).
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	p := Problem{Bounds: map[string]interval.Interval{}}
	for _, n := range names {
		p.Bounds[n] = iv(-1000000, 1000000)
	}
	for i := 0; i+1 < len(names); i++ {
		p.Cons = append(p.Cons, Constraint{
			Terms: []Term{lin(1, names[i]), lin(-1, names[i+1])}, K: 0, Rel: RelLe,
		})
	}
	p.Cons = append(p.Cons, Constraint{
		Terms: []Term{lin(1, names[len(names)-1]), lin(-1, names[0])}, K: -1, Rel: RelLe,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Solve(p, Options{})
		if err != nil || res.Status != Unsat {
			b.Fatalf("got %v %v", res.Status, err)
		}
	}
}
