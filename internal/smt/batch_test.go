package smt

import (
	"testing"

	"cpr/internal/expr"
	"cpr/internal/interval"
)

// batchFixture returns a shared common part, a mixed sat/unsat item set,
// and bounds, shaped like pool-reduction feasibility: one path-constraint
// prefix, one conjunct per candidate patch.
func batchFixture() (*expr.Term, []BatchItem, map[string]interval.Interval) {
	x := expr.IntVar("x")
	y := expr.IntVar("y")
	common := expr.And(
		expr.Ge(x, expr.Int(0)),
		expr.Le(x, expr.Int(10)),
		expr.Eq(y, expr.Add(x, expr.Int(1))),
	)
	items := []BatchItem{
		{ID: 0, F: expr.Gt(y, expr.Int(0))},                                    // sat (implied)
		{ID: 1, F: expr.Lt(x, expr.Int(-3))},                                   // unsat vs common
		{ID: 2, F: expr.Eq(x, expr.Int(7))},                                    // sat
		{ID: 3, F: expr.And(expr.Gt(x, expr.Int(4)), expr.Lt(x, expr.Int(3)))}, // self-contradictory
		{ID: 4, F: expr.Ge(y, expr.Int(12))},                                   // unsat vs common
		{ID: 5, F: expr.And(expr.Ge(x, expr.Int(2)), expr.Le(y, expr.Int(9)))}, // sat
		{ID: 6, F: expr.And(expr.Ge(x, expr.Int(9)), expr.Lt(y, expr.Int(5)))}, // unsat (mixed blame)
		{ID: 7, F: expr.Eq(expr.Rem(x, expr.Int(3)), expr.Int(1))},             // sat, purification
	}
	bounds := map[string]interval.Interval{
		"x": interval.New(-50, 50),
		"y": interval.New(-50, 50),
	}
	return common, items, bounds
}

// TestDecideBatchMatchesUnbatched: every batch verdict must equal the
// verdict of the exact unbatched query, for scratch and incremental
// solvers alike.
func TestDecideBatchMatchesUnbatched(t *testing.T) {
	common, items, bounds := batchFixture()
	for _, opts := range []Options{{Incremental: true}, {Incremental: true, Portfolio: 2}, {}} {
		s := NewSolver(opts)
		got := s.DecideBatch(common, items, bounds)
		if len(got) != len(items) {
			t.Fatalf("opts %+v: %d verdicts for %d items", opts, len(got), len(items))
		}
		for i, v := range got {
			if v.ID != items[i].ID {
				t.Fatalf("opts %+v: verdict %d has ID %d, want %d", opts, i, v.ID, items[i].ID)
			}
			if v.Err != nil {
				t.Fatalf("opts %+v: item %d: %v", opts, v.ID, v.Err)
			}
			ref := NewSolver(Options{})
			want, err := ref.Decide(expr.And(common, items[i].F), bounds)
			if err != nil {
				t.Fatalf("reference Decide item %d: %v", v.ID, err)
			}
			if v.Status != want {
				t.Fatalf("opts %+v: item %d: batch=%v unbatched=%v", opts, v.ID, v.Status, want)
			}
		}
	}
}

// TestDecideBatchGroupSat: an all-sat batch must be answered by a single
// group query, with every item credited to it.
func TestDecideBatchGroupSat(t *testing.T) {
	x := expr.IntVar("x")
	common := expr.Ge(x, expr.Int(0))
	var items []BatchItem
	for k := int64(0); k < 6; k++ {
		items = append(items, BatchItem{ID: int(k), F: expr.Ge(x, expr.Int(k))})
	}
	s := NewSolver(Options{Incremental: true})
	got := s.DecideBatch(common, items, map[string]interval.Interval{"x": interval.New(0, 100)})
	for _, v := range got {
		if v.Status != Sat || v.Err != nil {
			t.Fatalf("item %d: %v %v", v.ID, v.Status, v.Err)
		}
	}
	st := s.Stats()
	if st.BatchQueries != 1 {
		t.Errorf("BatchQueries = %d, want 1 (single sat group)", st.BatchQueries)
	}
	if st.BatchItems != uint64(len(items)) {
		t.Errorf("BatchItems = %d, want %d", st.BatchItems, len(items))
	}
}

// TestDecideBatchCoreKillsAll: a core inside the common part must rule out
// every item without bisection.
func TestDecideBatchCoreKillsAll(t *testing.T) {
	x := expr.IntVar("x")
	common := expr.And(expr.Ge(x, expr.Int(5)), expr.Le(x, expr.Int(3))) // contradictory by itself
	items := []BatchItem{
		{ID: 0, F: expr.Eq(x, expr.Int(1))},
		{ID: 1, F: expr.Eq(x, expr.Int(2))},
		{ID: 2, F: expr.Eq(x, expr.Int(3))},
	}
	s := NewSolver(Options{Incremental: true})
	got := s.DecideBatch(common, items, map[string]interval.Interval{"x": interval.New(-50, 50)})
	for _, v := range got {
		if v.Status != Unsat || v.Err != nil {
			t.Fatalf("item %d: %v %v", v.ID, v.Status, v.Err)
		}
	}
	st := s.Stats()
	if st.BatchBisections != 0 {
		t.Errorf("BatchBisections = %d, want 0 (common-core kill)", st.BatchBisections)
	}
}

// TestDecideBatchBisection: items that are pairwise contradictory but
// individually sat force mixed-blame cores; bisection must still converge
// to the right verdicts.
func TestDecideBatchBisection(t *testing.T) {
	x := expr.IntVar("x")
	common := expr.Ge(x, expr.Int(0))
	// Each item pins x to a distinct value: any group of ≥2 is unsat with
	// a core spanning two items' conjuncts, killing nobody.
	var items []BatchItem
	for k := int64(0); k < 5; k++ {
		items = append(items, BatchItem{ID: int(k), F: expr.Eq(x, expr.Int(k*10))})
	}
	s := NewSolver(Options{Incremental: true})
	got := s.DecideBatch(common, items, map[string]interval.Interval{"x": interval.New(0, 100)})
	for _, v := range got {
		if v.Status != Sat || v.Err != nil {
			t.Fatalf("item %d: %v %v (each pin is individually sat)", v.ID, v.Status, v.Err)
		}
	}
	if st := s.Stats(); st.BatchBisections == 0 {
		t.Errorf("BatchBisections = 0, want >0 over pairwise-contradictory items; stats %+v", st)
	}
}

// TestDecideBatchEmptyAndSingleton: degenerate shapes.
func TestDecideBatchEmptyAndSingleton(t *testing.T) {
	x := expr.IntVar("x")
	bounds := map[string]interval.Interval{"x": interval.New(0, 10)}
	s := NewSolver(Options{Incremental: true})
	if got := s.DecideBatch(expr.True(), nil, bounds); len(got) != 0 {
		t.Fatalf("empty batch returned %d verdicts", len(got))
	}
	got := s.DecideBatch(expr.Ge(x, expr.Int(0)), []BatchItem{{ID: 9, F: expr.Le(x, expr.Int(5))}}, bounds)
	if len(got) != 1 || got[0].ID != 9 || got[0].Status != Sat {
		t.Fatalf("singleton batch: %+v", got)
	}
	if st := s.Stats(); st.BatchQueries != 0 {
		t.Errorf("singleton batch issued %d group queries, want 0 (direct Decide)", st.BatchQueries)
	}
}
