package smt

import (
	"errors"
	"testing"

	"cpr/internal/expr"
	"cpr/internal/faultinject"
	"cpr/internal/interval"
	"cpr/internal/smt/cache"
)

func epochBounds() map[string]interval.Interval {
	return map[string]interval.Interval{"x": interval.New(0, 10)}
}

func gtFormula(k int64) *expr.Term {
	return expr.Gt(expr.IntVar("x"), expr.Int(k))
}

// probeHit reports whether f is served from c by a fresh solver.
func probeHit(t *testing.T, c *cache.Cache, f *expr.Term) bool {
	t.Helper()
	s := NewSolver(Options{Cache: c})
	if _, err := s.Check(f, epochBounds()); err != nil {
		t.Fatalf("probe Check: %v", err)
	}
	return s.Stats().CacheHits == 1
}

// TestAbortEpochInvalidatesJournaledWrites is the regression test for the
// abort/cache interaction: a query that dies mid-iteration (panic or
// budget) must withdraw every cache entry its solver wrote during that
// iteration — a run that aborted between a store and its consumers must
// not leave half-written state for other workers to hit.
func TestAbortEpochInvalidatesJournaledWrites(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind faultinject.Fault
		want error
	}{
		{"panic abort", faultinject.SolverPanic, ErrSolverPanic},
		{"budget abort", faultinject.SolverTimeout, ErrBudget},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := cache.New(cache.Options{})
			s := NewSolver(Options{Cache: c})

			s.BeginEpoch()
			if res, err := s.Check(gtFormula(3), epochBounds()); err != nil || res.Status != Sat {
				t.Fatalf("Check: %v %v", res.Status, err)
			}
			if !probeHit(t, c, gtFormula(3)) {
				t.Fatal("decisive verdict was not cached before the abort")
			}

			// Same epoch: the next query dies at entry. The abort must
			// invalidate the journaled write above.
			faultinject.Activate(&faultinject.Plan{SolverEvery: 1, SolverKind: tc.kind})
			_, err := s.Check(gtFormula(4), epochBounds())
			faultinject.Deactivate()
			if !errors.Is(err, tc.want) {
				t.Fatalf("aborting Check: got %v, want %v", err, tc.want)
			}

			if probeHit(t, c, gtFormula(3)) {
				t.Fatal("aborted epoch's cache write survived the abort")
			}
		})
	}
}

// TestAbortEpochScopedByBeginEpoch: only writes since the last BeginEpoch
// are withdrawn; earlier iterations' entries stay valid.
func TestAbortEpochScopedByBeginEpoch(t *testing.T) {
	c := cache.New(cache.Options{})
	s := NewSolver(Options{Cache: c})

	s.BeginEpoch()
	if _, err := s.Check(gtFormula(3), epochBounds()); err != nil {
		t.Fatalf("Check f1: %v", err)
	}
	s.BeginEpoch() // new iteration: f1's write leaves the journal
	if _, err := s.Check(gtFormula(4), epochBounds()); err != nil {
		t.Fatalf("Check f2: %v", err)
	}

	faultinject.Activate(&faultinject.Plan{SolverEvery: 1, SolverKind: faultinject.SolverPanic})
	_, err := s.Check(gtFormula(5), epochBounds())
	faultinject.Deactivate()
	if !errors.Is(err, ErrSolverPanic) {
		t.Fatalf("aborting Check: got %v, want ErrSolverPanic", err)
	}

	if !probeHit(t, c, gtFormula(3)) {
		t.Fatal("previous epoch's write was wrongly invalidated")
	}
	if probeHit(t, c, gtFormula(4)) {
		t.Fatal("current epoch's write survived the abort")
	}
}
