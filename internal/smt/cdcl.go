package smt

import "cpr/internal/smt/sat"

// cdcl is the boolean-engine surface the smt layer drives: either a bare
// *sat.Solver (scratch encoders, single-strategy contexts) or a
// *portfolio.Engine racing several diverse configurations behind the same
// methods (incremental contexts with Options.Portfolio ≥ 2). The DPLL(T)
// loops are engine-agnostic; only construction differs.
type cdcl interface {
	NewVar() int
	AddClause(lits ...sat.Lit) bool
	Solve() sat.Status
	SolveUnder(assumptions ...sat.Lit) sat.Status
	Core() []sat.Lit
	Model() []bool
	VerifyModel() bool
	NumClauses() int
	NumLearnts() int
	// SetLimits installs the per-query conflict budget and stop hook.
	SetLimits(maxConflicts uint64, stop func() bool)
	// Snapshot returns accumulated work counters (the sum over members
	// for a portfolio, so deltas reflect total work).
	Snapshot() sat.Stats
}
