package smt

import (
	"fmt"

	"cpr/internal/expr"
)

// purifier rewrites a formula so that the arithmetic layer only ever sees
// +, −, ·, and variables: integer-sorted ite, div, and rem are replaced by
// fresh variables with defining constraints collected in defs.
type purifier struct {
	defs  []*expr.Term
	next  int
	cache map[*expr.Term]*expr.Term
}

func (p *purifier) fresh() *expr.Term {
	v := expr.IntVar(fmt.Sprintf("%s%d", auxPrefix, p.next))
	p.next++
	return v
}

func (p *purifier) purify(t *expr.Term) *expr.Term {
	if p.cache == nil {
		p.cache = make(map[*expr.Term]*expr.Term)
	}
	if r, ok := p.cache[t]; ok {
		return r
	}
	var r *expr.Term
	switch t.Op {
	case expr.OpIntConst, expr.OpBoolConst, expr.OpVar:
		r = t
	case expr.OpIte:
		cond := p.purify(t.Args[0])
		a := p.purify(t.Args[1])
		b := p.purify(t.Args[2])
		if t.Sort == expr.SortBool {
			r = expr.Ite(cond, a, b)
			break
		}
		// Integer ite: v with (cond → v = a) ∧ (¬cond → v = b).
		v := p.fresh()
		p.defs = append(p.defs,
			expr.Implies(cond, expr.Eq(v, a)),
			expr.Implies(expr.Not(cond), expr.Eq(v, b)),
		)
		r = v
	case expr.OpDiv, expr.OpRem:
		a := p.purify(t.Args[0])
		b := p.purify(t.Args[1])
		q, rem := p.divPair(a, b, t.Op)
		if t.Op == expr.OpDiv {
			r = q
		} else {
			r = rem
		}
	default:
		args := make([]*expr.Term, len(t.Args))
		changed := false
		for i, a := range t.Args {
			args[i] = p.purify(a)
			if args[i] != a {
				changed = true
			}
		}
		if !changed {
			r = t
		} else {
			r = expr.Rebuild(t.Op, args)
		}
	}
	p.cache[t] = r
	return r
}

// divPair introduces quotient and remainder variables for a div/rem pair
// with C semantics (truncation toward zero): a = b·q + r, |r| < |b|, and
// sign(r) follows sign(a). The definition is guarded by b ≠ 0, matching
// SMT-LIB's treatment of division as total but unspecified at zero; the
// run-time crash semantics of division by zero is the executor's concern,
// not the logic's.
func (p *purifier) divPair(a, b *expr.Term, _ expr.Op) (q, r *expr.Term) {
	q = p.fresh()
	r = p.fresh()
	zero := expr.Int(0)
	absLT := expr.Or( // |r| < |b|
		expr.And(expr.Ge(r, zero), expr.Lt(r, b)),
		expr.And(expr.Ge(r, zero), expr.Lt(r, expr.Neg(b))),
		expr.And(expr.Le(r, zero), expr.Lt(expr.Neg(r), b)),
		expr.And(expr.Le(r, zero), expr.Lt(expr.Neg(r), expr.Neg(b))),
	)
	signFollows := expr.Or(
		expr.And(expr.Ge(a, zero), expr.Ge(r, zero)),
		expr.And(expr.Le(a, zero), expr.Le(r, zero)),
	)
	def := expr.Implies(
		expr.Ne(b, zero),
		expr.And(
			expr.Eq(a, expr.Add(expr.Mul(b, q), r)),
			absLT,
			signFollows,
		),
	)
	p.defs = append(p.defs, def)
	return q, r
}
