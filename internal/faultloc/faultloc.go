// Package faultloc implements spectrum-based statistical fault
// localization. The paper's repair jobs receive the fault (patch) location
// as an input and note (§7) that it "can be derived from statistical fault
// localization" — this package provides that derivation: it executes the
// buggy program on failing and passing inputs, collects statement
// spectra, and ranks statements by suspiciousness.
//
// Three classic formulas are provided: Ochiai (the default), Tarantula,
// and Jaccard.
package faultloc

import (
	"fmt"
	"math"
	"sort"

	"cpr/internal/expr"
	"cpr/internal/lang"
	"cpr/internal/lang/interp"
)

// Formula selects the suspiciousness metric.
type Formula uint8

// Supported metrics.
const (
	Ochiai Formula = iota
	Tarantula
	Jaccard
)

func (f Formula) String() string {
	switch f {
	case Ochiai:
		return "ochiai"
	case Tarantula:
		return "tarantula"
	case Jaccard:
		return "jaccard"
	default:
		return fmt.Sprintf("Formula(%d)", uint8(f))
	}
}

// Options configures a localization run.
type Options struct {
	// Formula is the suspiciousness metric (default Ochiai).
	Formula Formula
	// Original fills the hole for programs that have one (nil otherwise).
	Original *expr.Term
	// MaxSteps bounds each execution.
	MaxSteps int
}

// Ranked is one statement with its suspiciousness.
type Ranked struct {
	Pos lang.Pos
	// Score is the suspiciousness in [0, 1].
	Score float64
	// FailCov and PassCov count covering failing/passing runs.
	FailCov, PassCov int
}

// Report is the outcome of a localization run.
type Report struct {
	// Ranked lists statements by descending suspiciousness; ties break by
	// source position for determinism.
	Ranked []Ranked
	// Failing and Passing count the classified executions.
	Failing, Passing int
}

// Top returns the n most suspicious positions.
func (r *Report) Top(n int) []lang.Pos {
	out := make([]lang.Pos, 0, n)
	for i, e := range r.Ranked {
		if i >= n {
			break
		}
		out = append(out, e.Pos)
	}
	return out
}

// RankOf returns the 1-based rank of pos (0 if unranked).
func (r *Report) RankOf(pos lang.Pos) int {
	for i, e := range r.Ranked {
		if e.Pos == pos {
			return i + 1
		}
	}
	return 0
}

// Localize executes the program on every input, classifies runs as
// failing (crash) or passing, and ranks covered statements. Inputs whose
// runs end in an assume violation are discarded.
func Localize(prog *lang.Program, inputs []map[string]int64, opts Options) (*Report, error) {
	failCov := map[lang.Pos]int{}
	passCov := map[lang.Pos]int{}
	rep := &Report{}
	for _, in := range inputs {
		out := interp.Run(prog, in, interp.Options{
			MaxSteps:        opts.MaxSteps,
			Hole:            opts.Original,
			CollectCoverage: true,
		})
		if out.Err != nil && out.Err.Kind == interp.ErrAssumeViolated {
			continue
		}
		if out.Err != nil && !out.Crashed() {
			return nil, fmt.Errorf("faultloc: run on %v: %v", in, out.Err)
		}
		cov := failCov
		if out.Crashed() {
			rep.Failing++
		} else {
			rep.Passing++
			cov = passCov
		}
		for pos := range out.Coverage {
			cov[pos]++
		}
	}
	if rep.Failing == 0 {
		return nil, fmt.Errorf("faultloc: no failing execution among %d inputs", len(inputs))
	}

	seen := map[lang.Pos]bool{}
	for pos := range failCov {
		seen[pos] = true
	}
	for pos := range passCov {
		seen[pos] = true
	}
	for pos := range seen {
		ef, ep := failCov[pos], passCov[pos]
		nf := rep.Failing - ef
		score := suspiciousness(opts.Formula, ef, ep, nf, rep.Passing-ep)
		rep.Ranked = append(rep.Ranked, Ranked{Pos: pos, Score: score, FailCov: ef, PassCov: ep})
	}
	sort.Slice(rep.Ranked, func(i, j int) bool {
		a, b := rep.Ranked[i], rep.Ranked[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Col < b.Pos.Col
	})
	return rep, nil
}

func suspiciousness(f Formula, ef, ep, nf, np int) float64 {
	switch f {
	case Tarantula:
		if ef+nf == 0 {
			return 0
		}
		failRatio := float64(ef) / float64(ef+nf)
		passRatio := 0.0
		if ep+np > 0 {
			passRatio = float64(ep) / float64(ep+np)
		}
		if failRatio+passRatio == 0 {
			return 0
		}
		return failRatio / (failRatio + passRatio)
	case Jaccard:
		den := float64(ef + nf + ep)
		if den == 0 {
			return 0
		}
		return float64(ef) / den
	default: // Ochiai
		den := math.Sqrt(float64((ef + nf) * (ef + ep)))
		if den == 0 {
			return 0
		}
		return float64(ef) / den
	}
}
