package faultloc

import (
	"testing"

	"cpr/internal/lang"
)

// The faulty division sits inside the guarded branch: failing runs cover
// it, passing runs mostly do not.
const subject = `
void main(int x, int y) {
    int a = x + 1;
    if (y == 0) {
        int boom = 100 / y;
    } else {
        int fine = 100 / y;
    }
    int z = a * 2;
}
`

func inputs() []map[string]int64 {
	return []map[string]int64{
		{"x": 1, "y": 0},  // failing
		{"x": 2, "y": 0},  // failing
		{"x": 1, "y": 3},  // passing
		{"x": 5, "y": -2}, // passing
		{"x": 0, "y": 7},  // passing
	}
}

func TestLocalizeOchiai(t *testing.T) {
	prog := lang.MustParse(subject)
	rep, err := Localize(prog, inputs(), Options{})
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if rep.Failing != 2 || rep.Passing != 3 {
		t.Fatalf("classified %d/%d, want 2/3", rep.Failing, rep.Passing)
	}
	// The buggy division (line 5) must rank at the top.
	top := rep.Ranked[0]
	if top.Pos.Line != 5 {
		for _, r := range rep.Ranked {
			t.Logf("%v score=%.3f ef=%d ep=%d", r.Pos, r.Score, r.FailCov, r.PassCov)
		}
		t.Fatalf("top-ranked line %d, want 5", top.Pos.Line)
	}
	if top.Score != 1.0 {
		t.Fatalf("top score %v, want 1.0 (covered by all failing, no passing)", top.Score)
	}
	// The else-branch division is covered only by passing runs: score 0.
	if r := rep.RankOf(lang.Pos{Line: 7, Col: 9}); r == 1 {
		t.Fatal("passing-only statement ranked first")
	}
}

func TestFormulasAgreeOnExtremes(t *testing.T) {
	prog := lang.MustParse(subject)
	for _, f := range []Formula{Ochiai, Tarantula, Jaccard} {
		rep, err := Localize(prog, inputs(), Options{Formula: f})
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if rep.Ranked[0].Pos.Line != 5 {
			t.Errorf("%v: top line %d, want 5", f, rep.Ranked[0].Pos.Line)
		}
	}
}

func TestLocalizeNeedsFailingRun(t *testing.T) {
	prog := lang.MustParse(subject)
	_, err := Localize(prog, []map[string]int64{{"x": 1, "y": 5}}, Options{})
	if err == nil {
		t.Fatal("expected error without failing runs")
	}
}

func TestLocalizeSkipsAssumeViolations(t *testing.T) {
	prog := lang.MustParse(`
void main(int x) {
    assume(x >= 0);
    int b = 10 / x;
}`)
	rep, err := Localize(prog, []map[string]int64{
		{"x": -5}, // assume violated: discarded
		{"x": 0},  // failing
		{"x": 2},  // passing
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failing != 1 || rep.Passing != 1 {
		t.Fatalf("classified %d/%d, want 1/1", rep.Failing, rep.Passing)
	}
}

func TestTopAndRankOf(t *testing.T) {
	prog := lang.MustParse(subject)
	rep, err := Localize(prog, inputs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	top := rep.Top(2)
	if len(top) != 2 {
		t.Fatalf("Top(2): %v", top)
	}
	if rep.RankOf(top[0]) != 1 || rep.RankOf(top[1]) != 2 {
		t.Fatal("RankOf inconsistent with Top")
	}
	if rep.RankOf(lang.Pos{Line: 999, Col: 1}) != 0 {
		t.Fatal("unranked position should be 0")
	}
}
