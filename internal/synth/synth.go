// Package synth implements the component-based synthesizer of the paper's
// §3.3: it enumerates typed expression trees over the provided language
// components — program variables, integer constants, template parameters,
// and operator sets — producing the abstract patch templates that seed the
// repair pool.
//
// Templates are canonicalized through expr.Simplify and deduplicated, so
// syntactically different but semantically identical candidates (x+1 > y
// vs x >= y) occupy one pool slot. Enumeration is deterministic and
// ordered by tree size, so pools are reproducible.
package synth

import (
	"sort"

	"cpr/internal/cancel"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/patch"
)

// Components is the synthesis language for one repair job.
type Components struct {
	// Vars are the program variables visible at the patch location.
	Vars map[string]lang.Type
	// Consts are integer constant components.
	Consts []int64
	// Params are the template parameter names (the paper uses a, b, c…).
	Params []string
	// ParamRange bounds every parameter (the paper's default is [-10,10]).
	ParamRange interval.Interval
	// Arith, Cmp, Bool select the operators available to the synthesizer.
	// Empty slices mean the full default sets.
	Arith []expr.Op
	Cmp   []expr.Op
	Bool  []expr.Op
	// MaxTemplates caps the pool (default 1100, about the largest pool in
	// the paper's tables).
	MaxTemplates int
	// IncludeDeletion adds the constant true/false (or 0) templates that
	// represent functionality deletion; the paper keeps them in the pool
	// and lets ranking deprioritize them (§3.5.3). Default true — set
	// SuppressDeletion to drop them.
	SuppressDeletion bool
	// ExtraTemplates are custom patch templates in SMT-LIB prefix syntax
	// over the variable and parameter names (the paper's "components …
	// provided in the SMT-LIB format"). They are placed at the front of
	// the pool, after the deletion templates. Parse errors panic — the
	// templates are part of the job's configuration.
	ExtraTemplates []string
	// Cancel stops enumeration early when it expires, bounding checkpoint
	// and shutdown latency on large component grammars. A cancelled
	// enumeration returns the templates collected so far — always a prefix
	// of the full deterministic enumeration, so a resumed run that
	// re-synthesizes with a live token produces a superset in the same
	// order.
	Cancel *cancel.Token
}

// DefaultArith, DefaultCmp and DefaultBool are the paper's §3.3 component
// sets.
var (
	DefaultArith = []expr.Op{expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv, expr.OpRem}
	DefaultCmp   = []expr.Op{expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe}
	DefaultBool  = []expr.Op{expr.OpAnd, expr.OpOr, expr.OpNot}
)

func (c Components) withDefaults() Components {
	if c.Arith == nil {
		c.Arith = DefaultArith
	}
	if c.Cmp == nil {
		c.Cmp = DefaultCmp
	}
	if c.Bool == nil {
		c.Bool = DefaultBool
	}
	if c.MaxTemplates == 0 {
		c.MaxTemplates = 1100
	}
	if c.ParamRange == (interval.Interval{}) {
		c.ParamRange = interval.New(-10, 10)
	}
	return c
}

// GeneralCount reports the number of general language components in use
// (operator groups plus the parameter slots), matching the granularity of
// the paper's Components/General column.
func (c Components) GeneralCount() int {
	c = c.withDefaults()
	n := 0
	if len(c.Arith) > 0 {
		n++
	}
	if len(c.Cmp) > 0 {
		n++
	}
	if len(c.Bool) > 0 {
		n++
	}
	n += len(c.Params)
	return n
}

// CustomCount reports subject-specific components: program variables and
// constants.
func (c Components) CustomCount() int {
	return len(c.Vars) + len(c.Consts)
}

// ParamBounds returns the bounds map for the parameters.
func (c Components) ParamBounds() map[string]interval.Interval {
	c = c.withDefaults()
	m := make(map[string]interval.Interval, len(c.Params))
	for _, p := range c.Params {
		m[p] = c.ParamRange
	}
	return m
}

// Synthesize enumerates patch templates for the given hole type, smallest
// trees first, canonicalized and deduplicated, capped at MaxTemplates.
func Synthesize(c Components, holeType lang.Type) []*expr.Term {
	c = c.withDefaults()
	if holeType == lang.TypeBool {
		return synthBool(c)
	}
	return synthInt(c)
}

// BuildPool wraps templates into an abstract-patch pool with the
// component parameter bounds as the initial Tρ.
func BuildPool(templates []*expr.Term, c Components) *patch.Pool {
	bounds := c.ParamBounds()
	pool := &patch.Pool{}
	for i, t := range templates {
		pool.Patches = append(pool.Patches, patch.New(i+1, t, bounds))
	}
	return pool
}

// parseExtra parses the custom SMT-LIB templates matching the hole sort.
func parseExtra(c Components, sort expr.Sort) []*expr.Term {
	if len(c.ExtraTemplates) == 0 {
		return nil
	}
	vars := make(map[string]expr.Sort, len(c.Vars)+len(c.Params))
	for name, t := range c.Vars {
		if t == lang.TypeBool {
			vars[name] = expr.SortBool
		} else {
			vars[name] = expr.SortInt
		}
	}
	for _, p := range c.Params {
		vars[p] = expr.SortInt
	}
	var out []*expr.Term
	for _, src := range c.ExtraTemplates {
		t, err := expr.Parse(src, vars)
		if err != nil {
			panic("synth: ExtraTemplates: " + err.Error())
		}
		if t.Sort == sort {
			out = append(out, t)
		}
	}
	return out
}

// intLeaves returns the depth-1 integer terms: variables, parameters,
// constants — in deterministic order.
func intLeaves(c Components) []*expr.Term {
	var names []string
	for n, t := range c.Vars {
		if t == lang.TypeInt {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var out []*expr.Term
	for _, n := range names {
		out = append(out, expr.IntVar(n))
	}
	for _, p := range c.Params {
		out = append(out, expr.IntVar(p))
	}
	for _, k := range c.Consts {
		out = append(out, expr.Int(k))
	}
	return out
}

func boolVars(c Components) []*expr.Term {
	var names []string
	for n, t := range c.Vars {
		if t == lang.TypeBool {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var out []*expr.Term
	for _, n := range names {
		out = append(out, expr.BoolVar(n))
	}
	return out
}

func isParamName(c Components, name string) bool {
	for _, p := range c.Params {
		if p == name {
			return true
		}
	}
	return false
}

// usable reports whether a canonical template is worth keeping: it must
// mention at least one program variable (param-only and constant templates
// collapse into the explicit deletion patches) and at most one occurrence
// context per parameter is guaranteed by construction.
func usable(c Components, t *expr.Term) bool {
	if t.IsConst() {
		return false
	}
	for _, v := range expr.Vars(t) {
		if !isParamName(c, v.Name) {
			return true
		}
	}
	return false
}

// dedupAdd canonicalizes t and appends it if new and usable.
type collector struct {
	c    Components
	seen map[*expr.Term]bool
	out  []*expr.Term
	max  int
	n    int
}

// cancelStride bounds how many enumeration steps run between cancellation
// checks: large grammars reject millions of duplicate candidates between
// accepted templates, and the clock read in an expired-deadline check is
// too costly for every single step.
const cancelStride = 256

func (col *collector) add(t *expr.Term) bool {
	if len(col.out) >= col.max {
		return false
	}
	col.n++
	if col.n%cancelStride == 0 && col.c.Cancel.Expired() {
		return false
	}
	s := expr.Simplify(t)
	if col.seen[s] {
		return true
	}
	col.seen[s] = true
	if !usable(col.c, s) {
		return true
	}
	col.out = append(col.out, s)
	return true
}

func synthBool(c Components) []*expr.Term {
	col := &collector{c: c, seen: make(map[*expr.Term]bool), max: c.MaxTemplates}
	// Functionality-deletion templates first (the paper keeps them in the
	// pool; ranking handles them).
	if !c.SuppressDeletion {
		col.out = append(col.out, expr.True(), expr.False())
	}
	for _, t := range parseExtra(c, expr.SortBool) {
		col.add(t)
	}
	leaves := intLeaves(c)
	bvs := boolVars(c)
	for _, b := range bvs {
		col.add(b)
		col.add(expr.Not(b))
	}
	// Depth-1 atoms: cmp(leaf, leaf).
	var atoms []*expr.Term
	addAtom := func(t *expr.Term) bool {
		before := len(col.out)
		if !col.add(t) {
			return false
		}
		if len(col.out) > before {
			atoms = append(atoms, col.out[len(col.out)-1])
		}
		return true
	}
	for _, op := range c.Cmp {
		for _, l := range leaves {
			for _, r := range leaves {
				if l == r {
					continue
				}
				if !addAtom(expr.Rebuild(op, []*expr.Term{l, r})) {
					return col.out
				}
			}
		}
	}
	// Depth-2 atoms: cmp(arith(leaf, leaf), leaf).
	ints2 := arithCombos(c, leaves)
	for _, op := range c.Cmp {
		for _, l := range ints2 {
			for _, r := range leaves {
				if !addAtom(expr.Rebuild(op, []*expr.Term{l, r})) {
					return col.out
				}
			}
		}
	}
	// Boolean combinations of two depth-1 atoms.
	hasAnd, hasOr, hasNot := false, false, false
	for _, op := range c.Bool {
		switch op {
		case expr.OpAnd:
			hasAnd = true
		case expr.OpOr:
			hasOr = true
		case expr.OpNot:
			hasNot = true
		}
	}
	// Enumerate pairs diagonally (by i+j) so that capped pools still
	// contain combinations of diverse atoms rather than every pair
	// involving the first atom.
	n := len(atoms)
	for sum := 1; sum <= 2*n-3; sum++ {
		for i := 0; i < n; i++ {
			j := sum - i
			if j <= i || j >= n {
				continue
			}
			if hasAnd {
				if !col.add(expr.And(atoms[i], atoms[j])) {
					return col.out
				}
			}
			if hasOr {
				if !col.add(expr.Or(atoms[i], atoms[j])) {
					return col.out
				}
			}
		}
	}
	if hasNot {
		for i := 0; i < n; i++ {
			if !col.add(expr.Not(atoms[i])) {
				return col.out
			}
		}
	}
	return col.out
}

// arithCombos builds depth-2 integer terms arith(leaf, leaf).
func arithCombos(c Components, leaves []*expr.Term) []*expr.Term {
	seen := make(map[*expr.Term]bool)
	var out []*expr.Term
	for _, op := range c.Arith {
		for _, l := range leaves {
			for _, r := range leaves {
				if l == r && (op == expr.OpSub || op == expr.OpDiv || op == expr.OpRem) {
					continue // x−x, x/x, x%x are degenerate
				}
				// Division/remainder by a literal zero is useless.
				if (op == expr.OpDiv || op == expr.OpRem) && r.Op == expr.OpIntConst && r.Val == 0 {
					continue
				}
				t := expr.Simplify(expr.Rebuild(op, []*expr.Term{l, r}))
				if t.IsConst() || seen[t] {
					continue
				}
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}

func synthInt(c Components) []*expr.Term {
	col := &collector{c: c, seen: make(map[*expr.Term]bool), max: c.MaxTemplates}
	for _, t := range parseExtra(c, expr.SortInt) {
		col.add(t)
	}
	leaves := intLeaves(c)
	for _, l := range leaves {
		if !col.add(l) {
			return col.out
		}
	}
	for _, t := range arithCombos(c, leaves) {
		if !col.add(t) {
			return col.out
		}
	}
	// Depth-3: arith(depth-2, leaf), bounded by the template cap.
	ints2 := arithCombos(c, leaves)
	for _, op := range c.Arith {
		for _, l := range ints2 {
			for _, r := range leaves {
				if (op == expr.OpDiv || op == expr.OpRem) && r.Op == expr.OpIntConst && r.Val == 0 {
					continue
				}
				if !col.add(expr.Rebuild(op, []*expr.Term{l, r})) {
					return col.out
				}
			}
		}
	}
	return col.out
}
