package synth

import (
	"testing"
	"time"

	"cpr/internal/cancel"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/lang"
)

func figComponents() Components {
	return Components{
		Vars:       map[string]lang.Type{"x": lang.TypeInt, "y": lang.TypeInt},
		Params:     []string{"a", "b"},
		ParamRange: interval.New(-10, 10),
		Arith:      []expr.Op{expr.OpAdd, expr.OpSub},
		Cmp:        []expr.Op{expr.OpEq, expr.OpLt, expr.OpGe},
		Bool:       []expr.Op{expr.OpOr},
	}
}

func TestSynthesizeBoolContainsPaperTemplates(t *testing.T) {
	templates := Synthesize(figComponents(), lang.TypeBool)
	if len(templates) == 0 {
		t.Fatal("no templates")
	}
	want := []*expr.Term{
		expr.Simplify(expr.Ge(expr.IntVar("x"), expr.IntVar("a"))),
		expr.Simplify(expr.Lt(expr.IntVar("y"), expr.IntVar("b"))),
		expr.Simplify(expr.Or(
			expr.Eq(expr.IntVar("x"), expr.IntVar("a")),
			expr.Eq(expr.IntVar("y"), expr.IntVar("b")),
		)),
	}
	set := make(map[*expr.Term]bool, len(templates))
	for _, tpl := range templates {
		set[tpl] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("missing paper template %v", w)
		}
	}
	// Deletion templates lead the pool.
	if templates[0] != expr.True() || templates[1] != expr.False() {
		t.Fatalf("deletion templates missing: %v %v", templates[0], templates[1])
	}
}

func TestSynthesizeDeterministicAndDeduped(t *testing.T) {
	a := Synthesize(figComponents(), lang.TypeBool)
	b := Synthesize(figComponents(), lang.TypeBool)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic sizes %d vs %d", len(a), len(b))
	}
	seen := make(map[*expr.Term]bool)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
		if seen[a[i]] {
			t.Fatalf("duplicate template %v", a[i])
		}
		seen[a[i]] = true
	}
}

func TestSynthesizeCap(t *testing.T) {
	c := figComponents()
	c.MaxTemplates = 10
	templates := Synthesize(c, lang.TypeBool)
	if len(templates) > 10 {
		t.Fatalf("cap exceeded: %d", len(templates))
	}
}

func TestSynthesizeIntHole(t *testing.T) {
	c := Components{
		Vars:       map[string]lang.Type{"x": lang.TypeInt},
		Consts:     []int64{1},
		Params:     []string{"a"},
		ParamRange: interval.New(-10, 10),
		Arith:      []expr.Op{expr.OpAdd, expr.OpSub},
	}
	templates := Synthesize(c, lang.TypeInt)
	set := make(map[*expr.Term]bool)
	for _, tpl := range templates {
		if tpl.Sort != expr.SortInt {
			t.Fatalf("template %v has wrong sort", tpl)
		}
		set[tpl] = true
	}
	for _, w := range []*expr.Term{
		expr.IntVar("x"),
		expr.Simplify(expr.Add(expr.IntVar("x"), expr.IntVar("a"))),
		expr.Simplify(expr.Sub(expr.IntVar("x"), expr.Int(1))),
	} {
		if !set[w] {
			t.Errorf("missing int template %v", w)
		}
	}
	// Pure-parameter templates are excluded.
	if set[expr.IntVar("a")] {
		t.Error("param-only template leaked into pool")
	}
}

func TestBuildPool(t *testing.T) {
	c := figComponents()
	templates := Synthesize(c, lang.TypeBool)
	pool := BuildPool(templates, c)
	if pool.Size() != len(templates) {
		t.Fatalf("pool size %d != %d", pool.Size(), len(templates))
	}
	// x >= a must cover 21 concrete patches.
	for _, p := range pool.Patches {
		if p.Expr == expr.Simplify(expr.Ge(expr.IntVar("x"), expr.IntVar("a"))) {
			if p.CountConcrete() != 21 {
				t.Fatalf("x>=a count %d, want 21", p.CountConcrete())
			}
			return
		}
	}
	t.Fatal("x >= a not found in pool")
}

func TestComponentCounts(t *testing.T) {
	c := figComponents()
	if c.GeneralCount() != 5 { // arith + cmp + bool groups + 2 params
		t.Fatalf("GeneralCount: %d", c.GeneralCount())
	}
	if c.CustomCount() != 2 { // x, y
		t.Fatalf("CustomCount: %d", c.CustomCount())
	}
}

func TestSuppressDeletion(t *testing.T) {
	c := figComponents()
	c.SuppressDeletion = true
	templates := Synthesize(c, lang.TypeBool)
	for _, tpl := range templates {
		if tpl.IsConst() {
			t.Fatalf("deletion template %v present despite suppression", tpl)
		}
	}
}

func TestBoolVarComponents(t *testing.T) {
	c := Components{
		Vars:   map[string]lang.Type{"flag": lang.TypeBool, "x": lang.TypeInt},
		Params: []string{"a"},
		Cmp:    []expr.Op{expr.OpGt},
		Bool:   []expr.Op{expr.OpNot},
	}
	templates := Synthesize(c, lang.TypeBool)
	set := make(map[*expr.Term]bool)
	for _, tpl := range templates {
		set[tpl] = true
	}
	if !set[expr.BoolVar("flag")] || !set[expr.Not(expr.BoolVar("flag"))] {
		t.Fatalf("bool var templates missing")
	}
}

func TestExtraTemplates(t *testing.T) {
	c := figComponents()
	c.ExtraTemplates = []string{
		"(or (= x a) (and (< y b) (> x 3)))", // custom boolean shape
		"(+ x (* 2 y))",                      // int-sorted: filtered for bool holes
	}
	templates := Synthesize(c, lang.TypeBool)
	want := expr.Simplify(expr.MustParse("(or (= x a) (and (< y b) (> x 3)))",
		map[string]expr.Sort{"x": expr.SortInt, "y": expr.SortInt, "a": expr.SortInt, "b": expr.SortInt}))
	found := false
	for _, tpl := range templates {
		if tpl == want {
			found = true
		}
		if tpl.Sort != expr.SortBool {
			t.Fatalf("int template leaked into bool pool: %v", tpl)
		}
	}
	if !found {
		t.Fatal("custom template missing from pool")
	}
	// The custom template leads the non-deletion part of the pool.
	if templates[2] != want {
		t.Fatalf("custom template not at front: %v", templates[2])
	}
}

func TestExtraTemplatesPanicOnBadSyntax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad template")
		}
	}()
	c := figComponents()
	c.ExtraTemplates = []string{"(bogus x)"}
	Synthesize(c, lang.TypeBool)
}

// TestSynthesizeCancelledIsDeterministicPrefix: an expired token stops
// enumeration early, and whatever was collected is a prefix of the full
// deterministic enumeration — so a resumed run that re-synthesizes with a
// live token sees a superset in the same order, keeping index-based
// template references from checkpoints valid.
func TestSynthesizeCancelledIsDeterministicPrefix(t *testing.T) {
	full := Synthesize(figComponents(), lang.TypeBool)

	c := figComponents()
	c.Cancel = cancel.WithDeadline(nil, time.Now().Add(-time.Second))
	partial := Synthesize(c, lang.TypeBool)
	if len(partial) > len(full) {
		t.Fatalf("cancelled enumeration produced %d templates, full run %d", len(partial), len(full))
	}
	for i := range partial {
		if partial[i] != full[i] {
			t.Fatalf("cancelled enumeration diverged at %d: %v vs %v", i, partial[i], full[i])
		}
	}
	again := Synthesize(c, lang.TypeBool)
	if len(again) != len(partial) {
		t.Fatalf("cancelled enumeration nondeterministic: %d vs %d templates", len(again), len(partial))
	}

	// A live token changes nothing.
	c.Cancel = cancel.WithTimeout(nil, time.Hour)
	live := Synthesize(c, lang.TypeBool)
	if len(live) != len(full) {
		t.Fatalf("live token truncated enumeration: %d vs %d", len(live), len(full))
	}
	for i := range live {
		if live[i] != full[i] {
			t.Fatalf("live-token enumeration diverged at %d", i)
		}
	}
}
