// Package interval implements closed integer intervals, k-dimensional
// boxes, and regions (disjoint unions of boxes).
//
// Regions are the representation of abstract-patch parameter constraints
// Tρ(A) in the repair system (paper §4): refinement removes counterexample
// points from a region, splitting the containing box into at most 3ⁿ−1
// pieces, and Merge re-coalesces adjacent boxes. Because boxes are
// disjoint, exact model counting (the number of concrete patches an
// abstract patch covers) is a sum of box volumes.
package interval

import (
	"fmt"
	"math"
	"strings"
)

// Interval is the closed integer interval [Lo, Hi]. It is empty when
// Lo > Hi; the canonical empty interval is Empty().
type Interval struct {
	Lo, Hi int64
}

// New returns the interval [lo, hi].
func New(lo, hi int64) Interval { return Interval{lo, hi} }

// Point returns the singleton interval [v, v].
func Point(v int64) Interval { return Interval{v, v} }

// Empty returns the canonical empty interval.
func Empty() Interval { return Interval{1, 0} }

// IsEmpty reports whether the interval contains no integers.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool { return iv.Lo <= v && v <= iv.Hi }

// Count returns the number of integers in the interval, saturating at
// math.MaxInt64.
func (iv Interval) Count() int64 {
	if iv.IsEmpty() {
		return 0
	}
	// Careful with overflow: Hi - Lo may exceed int64 range.
	if iv.Lo < 0 && iv.Hi > math.MaxInt64+iv.Lo-1 {
		return math.MaxInt64
	}
	return iv.Hi - iv.Lo + 1
}

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(o Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if lo > hi {
		return Empty()
	}
	return Interval{lo, hi}
}

// Hull returns the smallest interval containing both operands.
func (iv Interval) Hull(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	lo, hi := iv.Lo, iv.Hi
	if o.Lo < lo {
		lo = o.Lo
	}
	if o.Hi > hi {
		hi = o.Hi
	}
	return Interval{lo, hi}
}

// Adjacent reports whether the union of the two intervals is itself an
// interval (they overlap or touch).
func (iv Interval) Adjacent(o Interval) bool {
	if iv.IsEmpty() || o.IsEmpty() {
		return true
	}
	a, b := iv, o
	if a.Lo > b.Lo {
		a, b = b, a
	}
	return b.Lo <= a.Hi || (a.Hi != math.MaxInt64 && b.Lo == a.Hi+1)
}

// String renders the interval as [lo,hi] or ∅.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "∅"
	}
	if iv.Lo == iv.Hi {
		return fmt.Sprintf("[%d]", iv.Lo)
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}

// Box is a k-dimensional product of intervals. A box with any empty
// dimension is empty.
type Box []Interval

// NewBox returns a box with the given per-dimension intervals.
func NewBox(ivs ...Interval) Box { return Box(ivs) }

// UniformBox returns an n-dimensional box with every dimension [lo, hi].
func UniformBox(n int, lo, hi int64) Box {
	b := make(Box, n)
	for i := range b {
		b[i] = Interval{lo, hi}
	}
	return b
}

// Clone returns a copy of the box.
func (b Box) Clone() Box {
	c := make(Box, len(b))
	copy(c, b)
	return c
}

// IsEmpty reports whether the box contains no points.
func (b Box) IsEmpty() bool {
	for _, iv := range b {
		if iv.IsEmpty() {
			return true
		}
	}
	return false
}

// Contains reports whether the point lies in the box. The point must have
// the box's dimension.
func (b Box) Contains(pt []int64) bool {
	if len(pt) != len(b) {
		panic(fmt.Sprintf("interval: Box.Contains: dimension mismatch %d vs %d", len(pt), len(b)))
	}
	for i, iv := range b {
		if !iv.Contains(pt[i]) {
			return false
		}
	}
	return true
}

// Count returns the number of integer points in the box, saturating at
// math.MaxInt64. The zero-dimensional box contains exactly one point.
func (b Box) Count() int64 {
	n := int64(1)
	for _, iv := range b {
		c := iv.Count()
		if c == 0 {
			return 0
		}
		if n > math.MaxInt64/c {
			return math.MaxInt64
		}
		n *= c
	}
	return n
}

// Intersect returns the intersection of two boxes of equal dimension.
func (b Box) Intersect(o Box) Box {
	if len(b) != len(o) {
		panic("interval: Box.Intersect: dimension mismatch")
	}
	out := make(Box, len(b))
	for i := range b {
		out[i] = b[i].Intersect(o[i])
		if out[i].IsEmpty() {
			return nil // canonical empty box of any dimension
		}
	}
	return out
}

// SubtractPointGrid removes pt from the box, partitioning the remainder
// into at most 3ⁿ−1 disjoint boxes: the Cartesian product of
// {below, at, above} per dimension, excluding the all-at cell. This is the
// Split of the paper (§4, “Region representation”).
func (b Box) SubtractPointGrid(pt []int64) []Box {
	if !b.Contains(pt) {
		return []Box{b.Clone()}
	}
	n := len(b)
	parts := make([][]Interval, n) // candidate intervals per dimension
	for i := range b {
		var cand []Interval
		if below := (Interval{b[i].Lo, pt[i] - 1}); !below.IsEmpty() && pt[i] != math.MinInt64 {
			cand = append(cand, below)
		}
		cand = append(cand, Point(pt[i]))
		if above := (Interval{pt[i] + 1, b[i].Hi}); !above.IsEmpty() && pt[i] != math.MaxInt64 {
			cand = append(cand, above)
		}
		parts[i] = cand
	}
	var out []Box
	cur := make(Box, n)
	var rec func(dim int, allAt bool)
	rec = func(dim int, allAt bool) {
		if dim == n {
			if !allAt {
				out = append(out, cur.Clone())
			}
			return
		}
		for _, iv := range parts[dim] {
			cur[dim] = iv
			rec(dim+1, allAt && iv.Lo == pt[dim] && iv.Hi == pt[dim])
		}
	}
	rec(0, true)
	return out
}

// SubtractPointStaircase removes pt from the box using the staircase
// decomposition, producing at most 2n disjoint boxes. Semantically
// equivalent to SubtractPointGrid but coarser; kept as an ablation of the
// paper's 3ⁿ−1 split.
func (b Box) SubtractPointStaircase(pt []int64) []Box {
	if !b.Contains(pt) {
		return []Box{b.Clone()}
	}
	var out []Box
	for i := range b {
		if below := (Interval{b[i].Lo, pt[i] - 1}); !below.IsEmpty() && pt[i] != math.MinInt64 {
			nb := b.Clone()
			for j := 0; j < i; j++ {
				nb[j] = Point(pt[j])
			}
			nb[i] = below
			out = append(out, nb)
		}
		if above := (Interval{pt[i] + 1, b[i].Hi}); !above.IsEmpty() && pt[i] != math.MaxInt64 {
			nb := b.Clone()
			for j := 0; j < i; j++ {
				nb[j] = Point(pt[j])
			}
			nb[i] = above
			out = append(out, nb)
		}
	}
	return out
}

// String renders the box as a product of intervals.
func (b Box) String() string {
	if len(b) == 0 {
		return "[]"
	}
	parts := make([]string, len(b))
	for i, iv := range b {
		parts[i] = iv.String()
	}
	return strings.Join(parts, "×")
}
