package interval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cpr/internal/expr"
)

// SplitMode selects the point-subtraction decomposition used by a Region.
type SplitMode uint8

// Split modes.
const (
	// SplitGrid is the paper's decomposition into at most 3ⁿ−1 boxes.
	SplitGrid SplitMode = iota
	// SplitStaircase is the coarser 2n-box decomposition (ablation).
	SplitStaircase
)

// Region is a finite union of pairwise-disjoint boxes of a common
// dimension. The zero value is the empty region of dimension 0.
type Region struct {
	Dim   int
	Boxes []Box
	Mode  SplitMode
}

// FromBox returns the region consisting of the single box b.
func FromBox(b Box) Region {
	if b == nil || b.IsEmpty() {
		return Region{Dim: len(b)}
	}
	return Region{Dim: len(b), Boxes: []Box{b.Clone()}}
}

// EmptyRegion returns the empty region of dimension dim.
func EmptyRegion(dim int) Region { return Region{Dim: dim} }

// Clone returns a deep copy of the region.
func (r Region) Clone() Region {
	boxes := make([]Box, len(r.Boxes))
	for i, b := range r.Boxes {
		boxes[i] = b.Clone()
	}
	return Region{Dim: r.Dim, Boxes: boxes, Mode: r.Mode}
}

// IsEmpty reports whether the region contains no points.
func (r Region) IsEmpty() bool { return len(r.Boxes) == 0 }

// Contains reports whether the point lies in the region.
func (r Region) Contains(pt []int64) bool {
	for _, b := range r.Boxes {
		if b.Contains(pt) {
			return true
		}
	}
	return false
}

// Count returns the number of integer points in the region, saturating at
// math.MaxInt64. Boxes are disjoint by construction, so the count is exact.
func (r Region) Count() int64 {
	var n int64
	for _, b := range r.Boxes {
		c := b.Count()
		if n > math.MaxInt64-c {
			return math.MaxInt64
		}
		n += c
	}
	return n
}

// SubtractPoint removes a single point from the region, splitting the box
// containing it according to the region's split mode. It is a no-op when
// the point lies outside the region.
func (r Region) SubtractPoint(pt []int64) Region {
	if len(pt) != r.Dim {
		panic(fmt.Sprintf("interval: Region.SubtractPoint: dimension mismatch %d vs %d", len(pt), r.Dim))
	}
	out := Region{Dim: r.Dim, Mode: r.Mode}
	for _, b := range r.Boxes {
		if !b.Contains(pt) {
			out.Boxes = append(out.Boxes, b)
			continue
		}
		var pieces []Box
		if r.Mode == SplitStaircase {
			pieces = b.SubtractPointStaircase(pt)
		} else {
			pieces = b.SubtractPointGrid(pt)
		}
		out.Boxes = append(out.Boxes, pieces...)
	}
	return out
}

// Intersect returns the intersection of two regions of equal dimension.
func (r Region) Intersect(o Region) Region {
	if r.Dim != o.Dim {
		panic("interval: Region.Intersect: dimension mismatch")
	}
	out := Region{Dim: r.Dim, Mode: r.Mode}
	for _, a := range r.Boxes {
		for _, b := range o.Boxes {
			if c := a.Intersect(b); c != nil {
				out.Boxes = append(out.Boxes, c)
			}
		}
	}
	return out
}

// Merge coalesces boxes that differ in exactly one dimension with
// adjacent intervals there, repeating to a fixed point (the paper's Merge
// step after refinement). The result covers the same set of points.
func (r Region) Merge() Region {
	boxes := make([]Box, len(r.Boxes))
	for i, b := range r.Boxes {
		boxes[i] = b.Clone()
	}
	for {
		merged := false
	outer:
		for i := 0; i < len(boxes); i++ {
			for j := i + 1; j < len(boxes); j++ {
				if m, ok := tryMerge(boxes[i], boxes[j]); ok {
					boxes[i] = m
					boxes = append(boxes[:j], boxes[j+1:]...)
					merged = true
					break outer
				}
			}
		}
		if !merged {
			break
		}
	}
	sortBoxes(boxes)
	return Region{Dim: r.Dim, Boxes: boxes, Mode: r.Mode}
}

// tryMerge merges two boxes if they agree on all dimensions but one, where
// their intervals are adjacent.
func tryMerge(a, b Box) (Box, bool) {
	diff := -1
	for i := range a {
		if a[i] != b[i] {
			if diff >= 0 {
				return nil, false
			}
			diff = i
		}
	}
	if diff < 0 {
		return a, true // identical boxes
	}
	if !a[diff].Adjacent(b[diff]) {
		return nil, false
	}
	m := a.Clone()
	m[diff] = a[diff].Hull(b[diff])
	return m, true
}

func sortBoxes(boxes []Box) {
	sort.Slice(boxes, func(i, j int) bool {
		a, b := boxes[i], boxes[j]
		for d := range a {
			if a[d].Lo != b[d].Lo {
				return a[d].Lo < b[d].Lo
			}
			if a[d].Hi != b[d].Hi {
				return a[d].Hi < b[d].Hi
			}
		}
		return false
	})
}

// Points enumerates every integer point of the region in deterministic
// order, calling f for each; enumeration stops early if f returns false.
// Intended for small regions (tests, model counting cross-checks).
func (r Region) Points(f func(pt []int64) bool) {
	boxes := make([]Box, len(r.Boxes))
	copy(boxes, r.Boxes)
	sortBoxes(boxes)
	pt := make([]int64, r.Dim)
	for _, b := range boxes {
		if !enumBox(b, pt, 0, f) {
			return
		}
	}
}

func enumBox(b Box, pt []int64, dim int, f func([]int64) bool) bool {
	if dim == len(b) {
		return f(pt)
	}
	for v := b[dim].Lo; ; v++ {
		pt[dim] = v
		if !enumBox(b, pt, dim+1, f) {
			return false
		}
		if v == b[dim].Hi { // avoid overflow at MaxInt64
			break
		}
	}
	return true
}

// ToTerm renders the region as a formula over the named variables: a
// disjunction over boxes of per-dimension bound conjunctions. The empty
// region is false; a region covering everything still enumerates bounds.
func (r Region) ToTerm(names []string) *expr.Term {
	if len(names) != r.Dim {
		panic("interval: Region.ToTerm: name count mismatch")
	}
	boxes := make([]Box, len(r.Boxes))
	copy(boxes, r.Boxes)
	sortBoxes(boxes)
	disj := make([]*expr.Term, 0, len(boxes))
	for _, b := range boxes {
		conj := make([]*expr.Term, 0, 2*len(b))
		for i, iv := range b {
			v := expr.IntVar(names[i])
			if iv.Lo == iv.Hi {
				conj = append(conj, expr.Eq(v, expr.Int(iv.Lo)))
				continue
			}
			conj = append(conj, expr.Ge(v, expr.Int(iv.Lo)), expr.Le(v, expr.Int(iv.Hi)))
		}
		disj = append(disj, expr.And(conj...))
	}
	return expr.Or(disj...)
}

// String renders the region as a union of boxes.
func (r Region) String() string {
	if r.IsEmpty() {
		return "∅"
	}
	boxes := make([]Box, len(r.Boxes))
	copy(boxes, r.Boxes)
	sortBoxes(boxes)
	parts := make([]string, len(boxes))
	for i, b := range boxes {
		parts[i] = b.String()
	}
	return strings.Join(parts, " ∪ ")
}
