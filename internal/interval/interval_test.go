package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cpr/internal/expr"
)

func TestIntervalBasics(t *testing.T) {
	iv := New(-3, 4)
	if iv.IsEmpty() || iv.Count() != 8 {
		t.Fatalf("Count([-3,4]) = %d, want 8", iv.Count())
	}
	if !iv.Contains(-3) || !iv.Contains(4) || iv.Contains(5) {
		t.Fatal("Contains wrong at endpoints")
	}
	if !Empty().IsEmpty() || Empty().Count() != 0 {
		t.Fatal("Empty() not empty")
	}
	if Point(7).Count() != 1 {
		t.Fatal("Point count != 1")
	}
}

func TestIntervalCountSaturates(t *testing.T) {
	full := New(math.MinInt64, math.MaxInt64)
	if full.Count() != math.MaxInt64 {
		t.Fatalf("full interval count = %d, want saturation", full.Count())
	}
}

func TestIntersectHullAdjacent(t *testing.T) {
	a, b := New(0, 10), New(5, 20)
	if got := a.Intersect(b); got != New(5, 10) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Hull(b); got != New(0, 20) {
		t.Fatalf("Hull = %v", got)
	}
	if New(0, 4).Intersect(New(6, 9)).IsEmpty() != true {
		t.Fatal("disjoint intersect should be empty")
	}
	if !New(0, 4).Adjacent(New(5, 9)) {
		t.Fatal("touching intervals should be adjacent")
	}
	if New(0, 4).Adjacent(New(6, 9)) {
		t.Fatal("gapped intervals should not be adjacent")
	}
	if !New(0, 4).Adjacent(New(2, 9)) {
		t.Fatal("overlapping intervals should be adjacent")
	}
}

func TestBoxBasics(t *testing.T) {
	b := NewBox(New(-10, 10), New(1, 10))
	if b.Count() != 21*10 {
		t.Fatalf("Box count = %d, want 210", b.Count())
	}
	if !b.Contains([]int64{0, 5}) || b.Contains([]int64{0, 0}) {
		t.Fatal("Box.Contains wrong")
	}
	if UniformBox(3, -1, 1).Count() != 27 {
		t.Fatal("UniformBox count wrong")
	}
	if len((Box{}).Clone()) != 0 || (Box{}).Count() != 1 {
		t.Fatal("0-dim box should contain exactly the empty point")
	}
}

func TestSubtractPointGridCountAndDisjoint(t *testing.T) {
	b := UniformBox(2, -2, 2)
	pt := []int64{0, 1}
	pieces := b.SubtractPointGrid(pt)
	if len(pieces) != 8 { // 3^2 - 1
		t.Fatalf("grid split produced %d boxes, want 8", len(pieces))
	}
	checkSplit(t, b, pt, pieces)
}

func TestSubtractPointStaircase(t *testing.T) {
	b := UniformBox(2, -2, 2)
	pt := []int64{0, 1}
	pieces := b.SubtractPointStaircase(pt)
	if len(pieces) != 4 { // 2n
		t.Fatalf("staircase split produced %d boxes, want 4", len(pieces))
	}
	checkSplit(t, b, pt, pieces)
}

func TestSubtractPointAtCorner(t *testing.T) {
	b := UniformBox(2, 0, 3)
	pt := []int64{0, 0}
	checkSplit(t, b, pt, b.SubtractPointGrid(pt))
	checkSplit(t, b, pt, b.SubtractPointStaircase(pt))
	// 1-dimensional and single-point boxes.
	one := NewBox(Point(5))
	if got := one.SubtractPointGrid([]int64{5}); len(got) != 0 {
		t.Fatalf("removing the only point should empty the box, got %v", got)
	}
	outside := NewBox(New(0, 3))
	if got := outside.SubtractPointGrid([]int64{9}); len(got) != 1 || got[0].Count() != 4 {
		t.Fatalf("subtracting an outside point must be a no-op, got %v", got)
	}
}

// checkSplit verifies count, disjointness, exclusion of pt, coverage.
func checkSplit(t *testing.T, b Box, pt []int64, pieces []Box) {
	t.Helper()
	var total int64
	for _, p := range pieces {
		total += p.Count()
		if p.Contains(pt) {
			t.Fatalf("piece %v still contains %v", p, pt)
		}
	}
	if total != b.Count()-1 {
		t.Fatalf("split count = %d, want %d", total, b.Count()-1)
	}
	for i := range pieces {
		for j := i + 1; j < len(pieces); j++ {
			if x := pieces[i].Intersect(pieces[j]); x != nil {
				t.Fatalf("pieces %v and %v overlap in %v", pieces[i], pieces[j], x)
			}
		}
	}
}

func TestRegionSubtractAndCount(t *testing.T) {
	r := FromBox(UniformBox(2, -10, 10)) // 441 points
	if r.Count() != 441 {
		t.Fatalf("initial count %d", r.Count())
	}
	r = r.SubtractPoint([]int64{3, 4})
	if r.Count() != 440 || r.Contains([]int64{3, 4}) {
		t.Fatalf("after subtract: count=%d contains=%v", r.Count(), r.Contains([]int64{3, 4}))
	}
	r = r.SubtractPoint([]int64{3, 4}) // idempotent
	if r.Count() != 440 {
		t.Fatalf("second subtract changed count: %d", r.Count())
	}
	r = r.SubtractPoint([]int64{-10, -10})
	if r.Count() != 439 {
		t.Fatalf("corner subtract: count=%d", r.Count())
	}
}

func TestRegionMerge(t *testing.T) {
	// Remove and re-merge: merging [l,p-1] and [p+1,u] pieces around a
	// removed point in dimension 0 at a fixed dim-1 point must coalesce
	// rows that the grid split fragmented.
	r := FromBox(UniformBox(2, 0, 4))
	r = r.SubtractPoint([]int64{2, 2})
	if len(r.Boxes) != 8 {
		t.Fatalf("expected 8 boxes before merge, got %d", len(r.Boxes))
	}
	m := r.Merge()
	if m.Count() != r.Count() {
		t.Fatalf("merge changed count: %d -> %d", r.Count(), m.Count())
	}
	if len(m.Boxes) >= len(r.Boxes) {
		t.Fatalf("merge did not reduce boxes: %d -> %d", len(r.Boxes), len(m.Boxes))
	}
	// Set equality via enumeration.
	want := map[[2]int64]bool{}
	r.Points(func(pt []int64) bool { want[[2]int64{pt[0], pt[1]}] = true; return true })
	got := map[[2]int64]bool{}
	m.Points(func(pt []int64) bool { got[[2]int64{pt[0], pt[1]}] = true; return true })
	if len(want) != len(got) {
		t.Fatalf("point sets differ in size: %d vs %d", len(want), len(got))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("point %v lost by merge", k)
		}
	}
}

func TestRegionIntersect(t *testing.T) {
	a := FromBox(NewBox(New(0, 10), New(0, 10)))
	b := FromBox(NewBox(New(5, 15), New(-5, 5)))
	x := a.Intersect(b)
	if x.Count() != 6*6 {
		t.Fatalf("intersect count = %d, want 36", x.Count())
	}
}

func TestRegionToTerm(t *testing.T) {
	r := FromBox(NewBox(New(-10, 7), Point(0)))
	f := r.ToTerm([]string{"a", "b"})
	m := expr.Model{"a": 3, "b": 0}
	ok, err := expr.EvalBool(f, m)
	if err != nil || !ok {
		t.Fatalf("point in region evaluates false: %v %v", ok, err)
	}
	m["b"] = 1
	ok, err = expr.EvalBool(f, m)
	if err != nil || ok {
		t.Fatalf("point outside region evaluates true")
	}
	if !EmptyRegion(2).ToTerm([]string{"a", "b"}).IsFalse() {
		t.Fatal("empty region should be false")
	}
}

// Property: repeated subtraction of random points matches a reference set
// implementation, for both split modes, and Merge preserves the set.
func TestRegionSubtractPointProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		for _, mode := range []SplitMode{SplitGrid, SplitStaircase} {
			reg := FromBox(UniformBox(2, 0, 5))
			reg.Mode = mode
			ref := map[[2]int64]bool{}
			for x := int64(0); x <= 5; x++ {
				for y := int64(0); y <= 5; y++ {
					ref[[2]int64{x, y}] = true
				}
			}
			for i := 0; i < 10; i++ {
				pt := []int64{int64(rr.Intn(7) - 1), int64(rr.Intn(7) - 1)} // sometimes outside
				reg = reg.SubtractPoint(pt)
				delete(ref, [2]int64{pt[0], pt[1]})
				if i%3 == 0 {
					reg = reg.Merge()
				}
			}
			if reg.Count() != int64(len(ref)) {
				return false
			}
			ok := true
			reg.Points(func(pt []int64) bool {
				if !ref[[2]int64{pt[0], pt[1]}] {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPointsEarlyStop(t *testing.T) {
	reg := FromBox(UniformBox(1, 0, 100))
	n := 0
	reg.Points(func(pt []int64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d points", n)
	}
}
