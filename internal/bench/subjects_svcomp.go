package bench

import (
	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/interval"
)

// svcompSubjects re-encode the 10 SV-COMP verification tasks of Table 4:
// programs with reachable assertion violations whose repair is a logical
// change before the assertion (not a weakening of the assertion itself).
// The specification is extracted directly from the included assertion, as
// in the paper (§5).
var svcompSubjects = []*Subject{
	{
		Project: "loops", BugID: "insertion_sort", Suite: SuiteSVCOMP,
		// The inner shift loop must move elements strictly greater than
		// the key; the buggy comparison breaks the sort order.
		Source: `
void main(int x0, int x1, int x2) {
    int a[3];
    a[0] = x0;
    a[1] = x1;
    a[2] = x2;
    int i = 1;
    while (i < 3) {
        int key = a[i];
        int j = i - 1;
        while (j >= 0) {
            int cur = a[j];
            if (__HOLE__) {
                a[j + 1] = cur;
                j = j - 1;
            } else {
                break;
            }
        }
        a[j + 1] = key;
        i = i + 1;
    }
    int r0 = a[0];
    int r1 = a[1];
    int r2 = a[2];
    __BUG__;
    assert(r0 <= r1 && r1 <= r2);
}`,
		SpecSrc:  "(and (<= r0 r1) (<= r1 r2))",
		DevPatch: "(> cur key)",
		Failing:  []map[string]int64{{"x0": 3, "x1": 1, "x2": 2}},
		CompVars: []string{"cur", "key", "j"},
		SpecVars: []string{"r0", "r1", "r2"},
		Cmp:      []expr.Op{expr.OpGt, expr.OpGe, expr.OpLt},
		Bool:     []expr.Op{expr.OpAnd},
		InputLo:  -20, InputHi: 20,
		Paper: PaperRow{PInit: "260", PFinal: "132", Ratio: "49%", PhiE: "120", PhiS: "0", Rank: "1"},
	},
	{
		Project: "loops", BugID: "linear_search", Suite: SuiteSVCOMP,
		// The scan loop must stop at the array length; the buggy bound
		// reads one element past the end.
		Source: `
void main(int x0, int x1, int x2, int x3, int q) {
    int a[4];
    a[0] = x0;
    a[1] = x1;
    a[2] = x2;
    a[3] = x3;
    int i = 0;
    int found = 0 - 1;
    while (__HOLE__) {
        __BUG__;
        int cur = a[i];
        if (cur == q) {
            found = i;
            break;
        }
        i = i + 1;
    }
    assert(found < 4);
}`,
		SpecSrc:  "(and (>= i 0) (< i 4))",
		DevPatch: "(< i 4)",
		Failing:  []map[string]int64{{"x0": 5, "x1": 6, "x2": 7, "x3": 8, "q": 9}},
		CompVars: []string{"i", "q", "found"},
		Cmp:      []expr.Op{expr.OpLt, expr.OpLe},
		Bool:     []expr.Op{expr.OpAnd},
		InputLo:  -20, InputHi: 20,
		Paper: PaperRow{PInit: "260", PFinal: "127", Ratio: "51%", PhiE: "109", PhiS: "17", Rank: "1"},
	},
	{
		Project: "loops", BugID: "string", Suite: SuiteSVCOMP,
		// Lexicographic comparison of two 2-character strings: the
		// second-character comparison is wrong.
		Source: `
void main(int c0, int c1, int d0, int d1) {
    int cmp = 0;
    if (c0 < d0) {
        cmp = 0 - 1;
    }
    if (c0 > d0) {
        cmp = 1;
    }
    if (cmp == 0) {
        if (__HOLE__) {
            cmp = 0 - 1;
        }
    }
    __BUG__;
    assert(cmp != 0 - 1 || c0 < d0 || c1 < d1);
}`,
		SpecSrc:      "(or (distinct cmp (- 1)) (< c0 d0) (< c1 d1))",
		DevPatch:     "(< c1 d1)",
		Failing:      []map[string]int64{{"c0": 4, "c1": 9, "d0": 4, "d1": 2}},
		CompVars:     []string{"c0", "c1", "d0", "d1"},
		SpecVars:     []string{"cmp"},
		Cmp:          []expr.Op{expr.OpLt, expr.OpLe, expr.OpGt},
		Bool:         []expr.Op{expr.OpOr, expr.OpAnd},
		MaxTemplates: 40,
		InputLo:      -20, InputHi: 20,
		Paper: PaperRow{PInit: "676", PFinal: "676", Ratio: "0%", PhiE: "37", PhiS: "0", Rank: "2"},
	},
	{
		Project: "loops", BugID: "eureka", Suite: SuiteSVCOMP,
		// The distance initialization is repaired, but the assertion only
		// bounds it from above — too weak to discriminate (the paper
		// reports 0% reduction here, correct patch still ranked 3).
		Source: `
int main(int w, int n) {
    assume(n >= 1);
    assume(n <= 8);
    assume(w >= 0);
    assume(w <= 20);
    int dist = __HOLE__;
    __BUG__;
    assert(dist <= w);
    return dist;
}`,
		SpecSrc:      "(<= dist w)",
		DevPatch:     "w",
		Failing:      []map[string]int64{{"w": 5, "n": 3}},
		CompVars:     []string{"w", "n"},
		SpecVars:     []string{"dist"},
		Params:       []string{"a"},
		Arith:        []expr.Op{expr.OpSub},
		MaxTemplates: 8, // the paper's pool is tiny (|P| = 29)
		InputLo:      -20, InputHi: 20,
		Paper: PaperRow{PInit: "29", PFinal: "29", Ratio: "0%", PhiE: "107", PhiS: "27", Rank: "3"},
	},
	{
		Project: "loops-crafted-1", BugID: "nested_delay", Suite: SuiteSVCOMP,
		// The inner loop must run m times per outer iteration; the buggy
		// bound lets it run away.
		Source: `
void main(int n, int m) {
    assume(n >= 0);
    assume(n <= 5);
    assume(m >= 0);
    assume(m <= 5);
    int steps = 0;
    int i = 0;
    while (i < n) {
        int j = 0;
        while (__HOLE__) {
            steps = steps + 1;
            j = j + 1;
            if (j > 10) {
                break;
            }
        }
        i = i + 1;
    }
    __BUG__;
    assert(steps <= 25);
}`,
		SpecSrc:  "(<= steps 25)",
		DevPatch: "(< j m)",
		Failing:  []map[string]int64{{"n": 4, "m": 2}},
		CompVars: []string{"j", "m", "i", "n"},
		SpecVars: []string{"steps"},
		Cmp:      []expr.Op{expr.OpLt},
		Bool:     []expr.Op{expr.OpAnd},
		InputLo:  0, InputHi: 10,
		Paper: PaperRow{PInit: "260", PFinal: "117", Ratio: "55%", PhiE: "9", PhiS: "8", Rank: "4"},
	},
	{
		Project: "loops", BugID: "sum", Suite: SuiteSVCOMP,
		// Gauss sum of 0..n−1: the loop bound decides the closed form.
		Source: `
int main(int n) {
    assume(n >= 0);
    assume(n <= 10);
    int s = 0;
    int i = 0;
    while (__HOLE__) {
        s = s + i;
        i = i + 1;
        if (i > 20) {
            break;
        }
    }
    __BUG__;
    assert(2 * s == n * (n - 1));
    return s;
}`,
		SpecSrc:  "(= (* 2 s) (* n (- n 1)))",
		DevPatch: "(< i n)",
		Failing:  []map[string]int64{{"n": 4}},
		CompVars: []string{"i", "n", "s"},
		Cmp:      []expr.Op{expr.OpLt, expr.OpLe},
		Bool:     []expr.Op{expr.OpAnd},
		InputLo:  0, InputHi: 10,
		Paper: PaperRow{PInit: "260", PFinal: "236", Ratio: "9%", PhiE: "116", PhiS: "0", Rank: "1"},
	},
	{
		Project: "array-examples", BugID: "bubble_sort", Suite: SuiteSVCOMP,
		// The swap condition is inverted relative to the sort order.
		Source: `
void main(int x0, int x1, int x2) {
    int a[3];
    a[0] = x0;
    a[1] = x1;
    a[2] = x2;
    int pass = 0;
    while (pass < 2) {
        int k = 0;
        while (k < 2) {
            int u = a[k];
            int w = a[k + 1];
            if (__HOLE__) {
                a[k] = w;
                a[k + 1] = u;
            }
            k = k + 1;
        }
        pass = pass + 1;
    }
    int r0 = a[0];
    int r1 = a[1];
    int r2 = a[2];
    __BUG__;
    assert(r0 <= r1 && r1 <= r2);
}`,
		SpecSrc:  "(and (<= r0 r1) (<= r1 r2))",
		DevPatch: "(> u w)",
		Failing:  []map[string]int64{{"x0": 9, "x1": 4, "x2": 6}},
		CompVars: []string{"u", "w", "k"},
		SpecVars: []string{"r0", "r1", "r2"},
		Cmp:      []expr.Op{expr.OpGt, expr.OpGe, expr.OpLt},
		Bool:     []expr.Op{expr.OpAnd},
		InputLo:  -20, InputHi: 20,
		Paper: PaperRow{PInit: "260", PFinal: "144", Ratio: "45%", PhiE: "34", PhiS: "19", Rank: "2"},
	},
	{
		Project: "array-examples", BugID: "unique_list", Suite: SuiteSVCOMP,
		// Insert the second value only when it is not a duplicate; the
		// tiny pool (the paper reports |P| = 5) contains the boolean flag
		// and its negation plus the trivial guards.
		Source: `
void main(int v0, int v1) {
    int list[2];
    list[0] = v0;
    int n = 1;
    bool dup = v1 == v0;
    if (__HOLE__) {
        list[n] = v1;
        n = n + 1;
    }
    int l0 = list[0];
    int l1 = list[1];
    __BUG__;
    assert(n == 1 || l0 != l1);
}`,
		SpecSrc:      "(or (= n 1) (distinct l0 l1))",
		DevPatch:     "(not dup)",
		Failing:      []map[string]int64{{"v0": 3, "v1": 3}},
		CompVars:     []string{},
		CompBoolVars: []string{"dup"},
		SpecVars:     []string{"l0", "l1"},
		Params:       []string{},
		Cmp:          []expr.Op{},
		Bool:         []expr.Op{expr.OpNot},
		InputLo:      -20, InputHi: 20,
		Paper: PaperRow{PInit: "5", PFinal: "4", Ratio: "20%", PhiE: "134", PhiS: "11", Rank: "1"},
	},
	{
		Project: "array-examples", BugID: "standard_run", Suite: SuiteSVCOMP,
		// The initialization loop must cover exactly the array; the
		// assertion checks the final index.
		Source: `
void main(int d) {
    int a[4];
    int i = 0;
    while (__HOLE__) {
        a[i] = d;
        i = i + 1;
        if (i > 8) {
            break;
        }
    }
    __BUG__;
    assert(i == 4);
}`,
		SpecSrc:  "(= i 4)",
		DevPatch: "(< i 4)",
		Failing:  []map[string]int64{{"d": 1}},
		CompVars: []string{"i", "d"},
		Cmp:      []expr.Op{expr.OpLt, expr.OpLe, expr.OpNe},
		Bool:     []expr.Op{expr.OpAnd},
		InputLo:  -20, InputHi: 20,
		Paper: PaperRow{PInit: "260", PFinal: "126", Ratio: "52%", PhiE: "68", PhiS: "41", Rank: "1"},
	},
	{
		Project: "recursive", BugID: "addition", Suite: SuiteSVCOMP,
		// Peano addition by recursion: the second argument of the
		// recursive adder is repaired (an integer expression hole).
		Source: `
int add(int p, int q) {
    if (q == 0) {
        return p;
    }
    if (q > 0) {
        return add(p + 1, q - 1);
    }
    return add(p - 1, q + 1);
}
int main(int x, int y) {
    assume(x >= 0);
    assume(x <= 10);
    assume(y >= 0 - 10);
    assume(y <= 10);
    int r = add(x, __HOLE__);
    __BUG__;
    assert(r == x + y);
    return r;
}`,
		SpecSrc:  "(= r (+ x y))",
		DevPatch: "y",
		Failing:  []map[string]int64{{"x": 3, "y": 2}},
		CompVars: []string{"x", "y"},
		Params:   []string{"a"},
		Arith:    []expr.Op{expr.OpAdd, expr.OpSub},
		InputLo:  -10, InputHi: 10,
		Paper: PaperRow{PInit: "38", PFinal: "14", Ratio: "63%", PhiE: "138", PhiS: "1", Rank: "4"},
	},
}

func init() {
	for _, s := range svcompSubjects {
		if s.Budget.MaxIterations == 0 {
			s.Budget = core.Budget{MaxIterations: 30, ValidationIterations: 8}
		}
		if s.ParamRange == (interval.Interval{}) {
			s.ParamRange = interval.New(-10, 10)
		}
	}
}
