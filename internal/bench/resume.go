package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cpr/internal/cegis"
	"cpr/internal/core"
	"cpr/internal/journal"
)

// rowRecordKind is the suite journal's only record kind: one completed
// subject row, JSON-encoded.
const rowRecordKind = 1

// rowRecord is the durable form of one finished SubjectResult. The Subject
// pointer is re-bound by ID on resume; errors round-trip as strings.
type rowRecord struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Err    string `json:"error,omitempty"`
	NA     bool   `json:"na,omitempty"`

	CPR       core.Stats    `json:"cpr"`
	Wall      time.Duration `json:"wall_ns"`
	Rank      int           `json:"rank"`
	RankFound bool          `json:"rank_found"`

	CEGISStats     cegis.Stats `json:"cegis"`
	CEGISGenerated bool        `json:"cegis_generated"`
	CEGISCorrect   bool        `json:"cegis_correct"`
}

func toRowRecord(s *Subject, r SubjectResult) rowRecord {
	rec := rowRecord{
		ID:             s.ID(),
		Status:         r.Status,
		NA:             r.NA,
		CPR:            r.CPR,
		Wall:           r.Wall,
		Rank:           r.Rank,
		RankFound:      r.RankFound,
		CEGISStats:     r.CEGISStats,
		CEGISGenerated: r.CEGISGenerated,
		CEGISCorrect:   r.CEGISCorrect,
	}
	if r.Err != nil {
		rec.Err = r.Err.Error()
	}
	return rec
}

func (rec rowRecord) toResult(s *Subject) SubjectResult {
	r := SubjectResult{
		Subject:        s,
		Status:         rec.Status,
		NA:             rec.NA,
		CPR:            rec.CPR,
		Wall:           rec.Wall,
		Rank:           rec.Rank,
		RankFound:      rec.RankFound,
		CEGISStats:     rec.CEGISStats,
		CEGISGenerated: rec.CEGISGenerated,
		CEGISCorrect:   rec.CEGISCorrect,
	}
	if rec.Err != "" {
		r.Err = errors.New(rec.Err)
	}
	return r
}

// suiteJournal makes one table run resumable: every finished subject row
// is appended to a per-suite record log, and the in-flight subject runs
// with an engine checkpoint directory of its own. A killed suite resumes
// by replaying the completed rows and continuing the interrupted subject
// from its engine snapshot. All methods are nil-safe; a nil journal (no
// checkpoint directory configured) makes every operation a no-op.
type suiteJournal struct {
	opts RunOptions
	log  *journal.LogWriter
	dir  string
	done map[string]rowRecord
}

// openSuiteJournal prepares the per-suite record log. Without Resume any
// previous journal for the tag is discarded — a fresh run must not skip
// subjects on stale rows. Journal failures degrade to a warned,
// non-resumable run, never an aborted suite.
func openSuiteJournal(tag string, opts RunOptions) *suiteJournal {
	if opts.Checkpoint.Dir == "" {
		return nil
	}
	if err := os.MkdirAll(opts.Checkpoint.Dir, 0o755); err != nil {
		warnBench(opts, "bench checkpoint: %v", err)
		return nil
	}
	path := filepath.Join(opts.Checkpoint.Dir, "suite-"+tag+".journal")
	sj := &suiteJournal{opts: opts, dir: opts.Checkpoint.Dir, done: map[string]rowRecord{}}
	if opts.Checkpoint.Resume {
		recs, err := journal.ReadLog(path)
		if err != nil {
			warnBench(opts, "bench checkpoint: journal %s unreadable, starting the suite fresh: %v", filepath.Base(path), err)
			os.Remove(path)
		}
		for _, rec := range recs {
			if rec.Kind != rowRecordKind {
				continue
			}
			var row rowRecord
			if err := json.Unmarshal(rec.Payload, &row); err != nil {
				warnBench(opts, "bench checkpoint: skipping malformed journal row: %v", err)
				continue
			}
			sj.done[row.ID] = row
		}
	} else {
		os.Remove(path)
	}
	log, err := journal.OpenLog(path)
	if err != nil {
		warnBench(opts, "bench checkpoint: cannot append to %s, suite will not be resumable: %v", filepath.Base(path), err)
		return sj // completed rows still replay; new ones just aren't recorded
	}
	sj.log = log
	return sj
}

func warnBench(opts RunOptions, format string, args ...any) {
	if opts.Checkpoint.Warn != nil {
		opts.Checkpoint.Warn(fmt.Sprintf(format, args...))
	}
}

// lookup returns a previously completed row for the subject, if any.
func (sj *suiteJournal) lookup(s *Subject) (SubjectResult, bool) {
	if sj == nil {
		return SubjectResult{}, false
	}
	rec, ok := sj.done[s.ID()]
	if !ok {
		return SubjectResult{}, false
	}
	return rec.toResult(s), true
}

// subjectOpts derives the per-subject engine options: the subject gets its
// own snapshot directories under <dir>/subjects/ (separate ones for the
// CPR engine and the CEGIS baseline — both write snap-*.ckpt files),
// resumed only when the suite itself is resuming (a fresh suite must not
// adopt stale snapshots).
func (sj *suiteJournal) subjectOpts(s *Subject, opts RunOptions) RunOptions {
	if sj == nil {
		return opts
	}
	ck := core.CheckpointOptions{
		Interval: opts.Checkpoint.Interval,
		Resume:   opts.Checkpoint.Resume,
		Keep:     opts.Checkpoint.Keep,
		Warn:     opts.Checkpoint.Warn,
	}
	opts.Core.Checkpoint = ck
	opts.Core.Checkpoint.Dir = filepath.Join(sj.subjectDir(s), "cpr")
	opts.CEGIS.Checkpoint = ck
	opts.CEGIS.Checkpoint.Dir = filepath.Join(sj.subjectDir(s), "cegis")
	return opts
}

func (sj *suiteJournal) subjectDir(s *Subject) string {
	return filepath.Join(sj.dir, "subjects", strings.ReplaceAll(s.ID(), string(os.PathSeparator), "_"))
}

// record makes a finished row durable and drops the subject's engine
// snapshots — the row itself is now the recovery point.
func (sj *suiteJournal) record(s *Subject, r SubjectResult) {
	if sj == nil {
		return
	}
	if sj.log != nil {
		payload, err := json.Marshal(toRowRecord(s, r))
		if err == nil {
			err = sj.log.Append(rowRecordKind, payload)
		}
		if err == nil {
			err = sj.log.Sync()
		}
		if err != nil {
			warnBench(sj.opts, "bench checkpoint: recording %s failed: %v", s.ID(), err)
		}
	}
	os.RemoveAll(sj.subjectDir(s))
}

func (sj *suiteJournal) close() {
	if sj == nil || sj.log == nil {
		return
	}
	sj.log.Close()
}
