package bench

import (
	"bytes"
	"encoding/json"
	"io"

	"cpr/internal/journal"
)

// JSONRow is the machine-readable form of one SubjectResult, written by
// cpr-bench -json: per-subject wall time, exploration effort, solver
// traffic, and verdict-cache effectiveness.
type JSONRow struct {
	Subject string `json:"subject"`
	Suite   string `json:"suite"`
	Status  string `json:"status"`
	Error   string `json:"error,omitempty"`
	NA      bool   `json:"na,omitempty"`

	WallMS     float64 `json:"wall_ms"`
	Iterations int     `json:"iterations"` // φE: main-loop concolic executions
	Skipped    int     `json:"paths_skipped"`

	PInit  int64 `json:"p_init"`
	PFinal int64 `json:"p_final"`
	Rank   int   `json:"rank,omitempty"` // 0 = developer patch not covered

	Workers       int     `json:"workers"`
	SolverQueries uint64  `json:"solver_queries"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`

	// Incremental-solver counters; omitted when the run used scratch mode.
	EncCacheHits       uint64 `json:"enc_cache_hits,omitempty"`
	EncCacheMisses     uint64 `json:"enc_cache_misses,omitempty"`
	ClausesLearned     uint64 `json:"clauses_learned,omitempty"`
	ClausesKept        uint64 `json:"clauses_kept,omitempty"`
	ClausesDeleted     uint64 `json:"clauses_deleted,omitempty"`
	AssumptionCores    uint64 `json:"assumption_cores,omitempty"`
	AssumptionCoreLits uint64 `json:"assumption_core_lits,omitempty"`

	// Self-healing health counters; omitted when zero (a healthy run with
	// default sampling may validate without ever failing or falling back).
	Validations        uint64 `json:"validations,omitempty"`
	ValidationFailures uint64 `json:"validation_failures,omitempty"`
	Quarantines        uint64 `json:"quarantines,omitempty"`
	FallbackSolves     uint64 `json:"fallback_solves,omitempty"`
	RebuildRetries     uint64 `json:"rebuild_retries,omitempty"`
	BreakerTrips       uint64 `json:"breaker_trips,omitempty"`

	// Solver wall-time breakdown (milliseconds): CDCL search, LIA theory
	// work, and verdict validation. The remainder of wall_ms is
	// exploration, synthesis, and bookkeeping.
	SatMS      float64 `json:"sat_ms"`
	LIAMS      float64 `json:"lia_ms"`
	ValidateMS float64 `json:"validate_ms"`

	// Portfolio-race counters; omitted when racing is off or never fired.
	PortfolioRaces      uint64 `json:"portfolio_races,omitempty"`
	PortfolioMirrorWins uint64 `json:"portfolio_mirror_wins,omitempty"`
	PortfolioShared     uint64 `json:"portfolio_shared,omitempty"`

	// Batched-feasibility counters; omitted when batching is off.
	BatchQueries    uint64 `json:"batch_queries,omitempty"`
	BatchItems      uint64 `json:"batch_items,omitempty"`
	BatchBisections uint64 `json:"batch_bisections,omitempty"`

	// Sharding counters; omitted on non-distributed runs. Informational
	// only — result-equality comparisons (e.g. CI's multi-shard
	// differential) must ignore them, the same as wall time and solver
	// traffic.
	Shards                uint64 `json:"shards,omitempty"`
	ShardSteals           uint64 `json:"shard_steals,omitempty"`
	ShardDeaths           uint64 `json:"shard_deaths,omitempty"`
	ShardImportedVerdicts uint64 `json:"shard_imported_verdicts,omitempty"`
	ShardImportedCores    uint64 `json:"shard_imported_cores,omitempty"`
	ShardRejectedImports  uint64 `json:"shard_rejected_imports,omitempty"`

	// Fleet-resilience counters; omitted on non-distributed or fault-free
	// runs. Excluded from equality comparisons like the rest of the shard
	// block: liveness kills, hedges, and reconnects move wall time only.
	ShardHeartbeatsMissed uint64 `json:"shard_heartbeats_missed,omitempty"`
	ShardHedges           uint64 `json:"shard_hedges,omitempty"`
	ShardHedgeWins        uint64 `json:"shard_hedge_wins,omitempty"`
	ShardHedgeLosses      uint64 `json:"shard_hedge_losses,omitempty"`
	ShardReconnects       uint64 `json:"shard_reconnects,omitempty"`
	ShardLateJoins        uint64 `json:"shard_late_joins,omitempty"`
	ShardDegradedStarts   uint64 `json:"shard_degraded_starts,omitempty"`

	// Memory-governance counters; omitted on ungoverned runs. Like the
	// shard block these describe scheduling, not results: equality
	// comparisons (e.g. CI's constrained-vs-unconstrained differential)
	// must ignore them.
	GovernPolls          uint64 `json:"govern_polls,omitempty"`
	MemRungSoft          uint64 `json:"mem_rung_soft,omitempty"`
	MemRungHigh          uint64 `json:"mem_rung_high,omitempty"`
	MemRungCritical      uint64 `json:"mem_rung_critical,omitempty"`
	MemCacheShrinks      uint64 `json:"mem_cache_shrinks,omitempty"`
	MemCacheShrinkBytes  uint64 `json:"mem_cache_shrink_bytes,omitempty"`
	MemContextRetires    uint64 `json:"mem_context_retires,omitempty"`
	MemSpills            uint64 `json:"mem_spills,omitempty"`
	MemSpilledItems      uint64 `json:"mem_spilled_items,omitempty"`
	MemReloads           uint64 `json:"mem_reloads,omitempty"`
	MemSpillLoadFailures uint64 `json:"mem_spill_load_failures,omitempty"`
	MemStopped           bool   `json:"mem_stopped,omitempty"`

	// Peak structure sizes, tracked on every run (governed or not);
	// informational, excluded from equality comparisons with the rest of
	// this block.
	FrontierPeak      int    `json:"frontier_peak,omitempty"`
	SeenPeak          int    `json:"seen_peak,omitempty"`
	FrontierPeakBytes uint64 `json:"frontier_peak_bytes,omitempty"`
	SeenPeakBytes     uint64 `json:"seen_peak_bytes,omitempty"`
	PoolPeakBytes     uint64 `json:"pool_peak_bytes,omitempty"`
}

// JSONRows converts measured rows for serialization.
func JSONRows(rows []SubjectResult) []JSONRow {
	out := make([]JSONRow, 0, len(rows))
	for _, r := range rows {
		row := JSONRow{
			Subject: r.Subject.ID(),
			Suite:   r.Subject.Suite,
			Status:  r.Status,
			NA:      r.NA,
		}
		if r.Err != nil {
			row.Error = r.Err.Error()
		}
		if !r.NA && r.Err == nil {
			row.WallMS = float64(r.Wall.Microseconds()) / 1e3
			row.Iterations = r.CPR.PathsExplored
			row.Skipped = r.CPR.PathsSkipped
			row.PInit = r.CPR.PInit
			row.PFinal = r.CPR.PFinal
			if r.RankFound {
				row.Rank = r.Rank
			}
			row.Workers = r.CPR.Workers
			row.SolverQueries = r.CPR.SolverQueries
			row.CacheHits = r.CPR.CacheHits
			row.CacheMisses = r.CPR.CacheMisses
			row.CacheHitRate = r.CPR.CacheHitRate()
			row.EncCacheHits = r.CPR.EncodeCacheHits
			row.EncCacheMisses = r.CPR.EncodeCacheMisses
			row.ClausesLearned = r.CPR.ClausesLearned
			row.ClausesKept = r.CPR.ClausesKept
			row.ClausesDeleted = r.CPR.ClausesDeleted
			row.AssumptionCores = r.CPR.AssumptionCores
			row.AssumptionCoreLits = r.CPR.AssumptionCoreLits
			row.Validations = r.CPR.Validations
			row.ValidationFailures = r.CPR.ValidationFailures
			row.Quarantines = r.CPR.Quarantines
			row.FallbackSolves = r.CPR.FallbackSolves
			row.RebuildRetries = r.CPR.RebuildRetries
			row.BreakerTrips = r.CPR.BreakerTrips
			row.SatMS = float64(r.CPR.SatTime.Microseconds()) / 1e3
			row.LIAMS = float64(r.CPR.LIATime.Microseconds()) / 1e3
			row.ValidateMS = float64(r.CPR.ValidateTime.Microseconds()) / 1e3
			row.PortfolioRaces = r.CPR.PortfolioRaces
			row.PortfolioMirrorWins = r.CPR.PortfolioMirrorWins
			row.PortfolioShared = r.CPR.PortfolioShared
			row.BatchQueries = r.CPR.BatchQueries
			row.BatchItems = r.CPR.BatchItems
			row.BatchBisections = r.CPR.BatchBisections
			row.Shards = uint64(r.CPR.Shards)
			row.ShardSteals = r.CPR.ShardSteals
			row.ShardDeaths = r.CPR.ShardDeaths
			row.ShardImportedVerdicts = r.CPR.ShardImportedVerdicts
			row.ShardImportedCores = r.CPR.ShardImportedCores
			row.ShardRejectedImports = r.CPR.ShardRejectedImports
			row.ShardHeartbeatsMissed = r.CPR.ShardHeartbeatsMissed
			row.ShardHedges = r.CPR.ShardHedges
			row.ShardHedgeWins = r.CPR.ShardHedgeWins
			row.ShardHedgeLosses = r.CPR.ShardHedgeLosses
			row.ShardReconnects = r.CPR.ShardReconnects
			row.ShardLateJoins = r.CPR.ShardLateJoins
			row.ShardDegradedStarts = r.CPR.ShardDegradedStarts
			row.GovernPolls = r.CPR.GovernPolls
			row.MemRungSoft = r.CPR.MemRungSoft
			row.MemRungHigh = r.CPR.MemRungHigh
			row.MemRungCritical = r.CPR.MemRungCritical
			row.MemCacheShrinks = r.CPR.MemCacheShrinks
			row.MemCacheShrinkBytes = r.CPR.MemCacheShrinkBytes
			row.MemContextRetires = r.CPR.MemContextRetires
			row.MemSpills = r.CPR.MemSpills
			row.MemSpilledItems = r.CPR.MemSpilledItems
			row.MemReloads = r.CPR.MemReloads
			row.MemSpillLoadFailures = r.CPR.MemSpillLoadFailures
			row.MemStopped = r.CPR.MemStopped
			row.FrontierPeak = r.CPR.FrontierPeak
			row.SeenPeak = r.CPR.SeenPeak
			row.FrontierPeakBytes = r.CPR.FrontierPeakBytes
			row.SeenPeakBytes = r.CPR.SeenPeakBytes
			row.PoolPeakBytes = r.CPR.PoolPeakBytes
		}
		out = append(out, row)
	}
	return out
}

// WriteJSON writes the rows as an indented JSON array.
func WriteJSON(w io.Writer, rows []SubjectResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(JSONRows(rows))
}

// WriteJSONFile writes the rows to path (the cpr-bench -json target) via
// a same-directory temp file and an atomic rename, so a crash mid-write
// never leaves a truncated artifact where a previous complete one stood.
func WriteJSONFile(path string, rows []SubjectResult) error {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rows); err != nil {
		return err
	}
	return journal.WriteFileAtomic(path, buf.Bytes())
}
