package bench

import (
	"strings"
	"testing"

	"cpr/internal/faultinject"
)

// TestSelfHealCountersReachTables proves the health plumbing end to end
// through the cpr-bench reporting path: with the solver forced to lie on
// every verdict, the per-subject stats must carry nonzero quarantine and
// fallback counters, the table summary must print the self-heal line, and
// the JSON rows must serialize the same numbers.
func TestSelfHealCountersReachTables(t *testing.T) {
	if testing.Short() {
		t.Skip("table run in -short mode")
	}
	faultinject.Activate(&faultinject.Plan{LieEvery: 1, LieKind: faultinject.SolverSpuriousUnsat})
	defer faultinject.Deactivate()

	opts := RunOptions{Budget: fastBudget}
	opts.Core.Workers = 1
	opts.Core.SMT.Incremental = true
	opts.Core.SMT.Paranoid = true

	s := Catalog(SuiteSVCOMP)[0]
	row := runCPR(s, opts)
	if row.Err != nil {
		t.Fatalf("%s under lying solver: %v", s.ID(), row.Err)
	}
	st := row.CPR
	if st.Validations == 0 || st.ValidationFailures == 0 {
		t.Fatalf("validation counters missing: %+v", st)
	}
	if st.Quarantines == 0 && st.FallbackSolves == 0 {
		t.Fatalf("ladder engaged but quarantine/fallback counters are zero: %+v", st)
	}

	out := solverSummary([]SubjectResult{row})
	if !strings.Contains(out, "self-heal:") {
		t.Errorf("table summary lacks the self-heal line:\n%s", out)
	}

	rows := JSONRows([]SubjectResult{row})
	if rows[0].Validations != st.Validations ||
		rows[0].Quarantines != st.Quarantines ||
		rows[0].FallbackSolves != st.FallbackSolves {
		t.Errorf("JSON row dropped health counters: %+v", rows[0])
	}
}
