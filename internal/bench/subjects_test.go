package bench

import (
	"testing"

	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/lang"
	"cpr/internal/lang/interp"
	"cpr/internal/smt"
	"cpr/internal/synth"
)

func allSubjects() []*Subject {
	var out []*Subject
	for _, suite := range []string{SuiteExtractFix, SuiteManyBugs, SuiteSVCOMP} {
		out = append(out, Catalog(suite)...)
	}
	return out
}

func TestCatalogSizes(t *testing.T) {
	if n := len(Catalog(SuiteExtractFix)); n != 30 {
		t.Errorf("extractfix subjects: %d, want 30", n)
	}
	if n := len(Catalog(SuiteManyBugs)); n != 5 {
		t.Errorf("manybugs subjects: %d, want 5", n)
	}
	if n := len(Catalog(SuiteSVCOMP)); n != 10 {
		t.Errorf("svcomp subjects: %d, want 10", n)
	}
	if Catalog("nonsense") != nil {
		t.Error("unknown suite should be nil")
	}
}

func TestFind(t *testing.T) {
	if s := Find("Jasper", "CVE-2016-8691"); s == nil || s.Suite != SuiteExtractFix {
		t.Fatalf("Find failed: %+v", s)
	}
	if Find("Nope", "x") != nil {
		t.Fatal("Find should return nil for unknown subjects")
	}
}

// TestSubjectsWellFormed checks that every runnable subject parses, has a
// hole and a bug marker, has parseable spec and developer patch of the
// right sort, and that the synthesizer's template pool contains the
// developer patch's shape (via the job assembling without error).
func TestSubjectsWellFormed(t *testing.T) {
	for _, s := range allSubjects() {
		s := s
		t.Run(s.ID(), func(t *testing.T) {
			if s.Unsupported != "" {
				if s.Paper.PInit != "N/A" {
					t.Errorf("unsupported subject should report N/A")
				}
				return
			}
			prog, err := s.Program()
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if prog.HolePos == nil {
				t.Fatal("no __HOLE__")
			}
			if len(prog.BugPositions) == 0 {
				t.Fatal("no __BUG__ marker")
			}
			spec, err := s.Spec()
			if err != nil {
				t.Fatalf("spec: %v", err)
			}
			if spec.Sort != expr.SortBool {
				t.Fatalf("spec has sort %v", spec.Sort)
			}
			dev, err := s.DevPatchTerm()
			if err != nil {
				t.Fatalf("dev patch: %v", err)
			}
			wantSort := expr.SortBool
			if prog.HoleType == lang.TypeInt {
				wantSort = expr.SortInt
			}
			if dev.Sort != wantSort {
				t.Fatalf("dev patch sort %v, hole type %v", dev.Sort, prog.HoleType)
			}
			if len(s.Failing) == 0 {
				t.Fatal("no failing input")
			}
			if _, err := s.Job(core.Budget{}); err != nil {
				t.Fatalf("job: %v", err)
			}
		})
	}
}

// TestDeveloperPatchRepairsFailingInput: running the program with the
// developer patch on the failing input must terminate without a crash.
func TestDeveloperPatchRepairsFailingInput(t *testing.T) {
	for _, s := range allSubjects() {
		s := s
		t.Run(s.ID(), func(t *testing.T) {
			if s.Unsupported != "" {
				return
			}
			prog, _ := s.Program()
			dev, _ := s.DevPatchTerm()
			for _, fi := range s.Failing {
				out := interp.Run(prog, fi, interp.Options{Hole: dev})
				if out.Crashed() {
					t.Fatalf("developer patch crashes on failing input %v: %v", fi, out.Err)
				}
				if out.Err != nil && out.Err.Kind != interp.ErrAssumeViolated {
					t.Fatalf("developer patch errors on %v: %v", fi, out.Err)
				}
			}
		})
	}
}

// TestDeveloperPatchInSynthesisSpace: the synthesizer's pool must contain
// a template covering the developer patch (the paper's assumption in §7).
func TestDeveloperPatchInSynthesisSpace(t *testing.T) {
	solver := smt.NewSolver(smt.Options{})
	for _, s := range allSubjects() {
		s := s
		t.Run(s.ID(), func(t *testing.T) {
			if s.Unsupported != "" {
				return
			}
			prog, _ := s.Program()
			comp, err := s.Components()
			if err != nil {
				t.Fatal(err)
			}
			dev, _ := s.DevPatchTerm()
			templates := synth.Synthesize(comp, prog.HoleType)
			pool := synth.BuildPool(templates, comp)
			job, _ := s.Job(core.Budget{})
			rank, found := core.CorrectPatchRank(solver, pool.Patches, dev, job.InputBounds)
			if !found {
				for i, p := range pool.Patches {
					if i < 20 {
						t.Logf("template %d: %v", i, p.Expr)
					}
				}
				t.Fatalf("developer patch %v not covered by the %d-template pool", dev, pool.Size())
			}
			_ = rank
		})
	}
}
