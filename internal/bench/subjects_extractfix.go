package bench

import (
	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/interval"
)

// extractFixSubjects re-encode the 30 security vulnerabilities of the
// ExtractFix benchmark (Table 1/2). Each mini-C program preserves the bug
// class of the original CVE (divide-by-zero, out-of-bounds access, missing
// sanitization) and the shape of the developer fix (an inserted or
// repaired guard at the patch location). The Paper fields carry the rows
// of Table 1 verbatim for paper-vs-measured reporting.
var extractFixSubjects = []*Subject{
	{
		Project: "Libtiff", BugID: "CVE-2016-5321", Suite: SuiteExtractFix,
		// DumpModeDecode: the sample index s runs past the strip buffer
		// unless sanitized. Developer fix: reject s > 7 (bit index).
		Source: `
void main(int s, int n) {
    int strip[8];
    assume(n >= 0);
    assume(n < 100);
    if (s >= 0) {
        if (__HOLE__) {
            return;
        }
        __BUG__;
        strip[s] = n;
    }
}`,
		SpecSrc:  "(and (>= s 0) (< s 8))",
		DevPatch: "(> s 7)",
		Failing:  []map[string]int64{{"s": 12, "n": 3}},
		Cmp:      []expr.Op{expr.OpGt, expr.OpGe, expr.OpEq},
		Bool:     []expr.Op{expr.OpOr},
		Paper: PaperRow{
			CEGISPInit: "174", CEGISPFinal: "174", CEGISRatio: "0%", CEGISPhiE: "17",
			PInit: "174", PFinal: "104", Ratio: "40%", PhiE: "67", PhiS: "77", Rank: "2",
		},
	},
	{
		Project: "Libtiff", BugID: "CVE-2014-8128", Suite: SuiteExtractFix,
		// tif_next: the run length td decoded from the input may exceed
		// the row buffer.
		Source: `
void main(int td, int rows) {
    int row[16];
    assume(rows > 0);
    assume(rows <= 16);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int i = 0;
    while (i < td) {
        row[i] = 1;
        i = i + 1;
    }
}`,
		SpecSrc:    "(<= td 16)",
		DevPatch:   "(> td 16)",
		Failing:    []map[string]int64{{"td": 40, "rows": 8}},
		ParamRange: interval.New(-20, 20),
		Cmp:        []expr.Op{expr.OpGt, expr.OpGe, expr.OpLt},
		Bool:       []expr.Op{expr.OpOr},
		Paper: PaperRow{
			CEGISPInit: "260", CEGISPFinal: "260", CEGISRatio: "0%", CEGISPhiE: "0",
			PInit: "260", PFinal: "260", Ratio: "0%", PhiE: "0", PhiS: "0", Rank: "1",
		},
	},
	{
		Project: "Libtiff", BugID: "CVE-2016-3186", Suite: SuiteExtractFix,
		// gif2tiff: a read loop keeps writing past the buffer because its
		// condition ignores the buffer capacity (condition repair).
		Source: `
int readbyte(int seed, int i) {
    return (seed + i * 7) % 256;
}
void main(int seed, int count) {
    int buf[12];
    assume(count >= 0);
    assume(count < 64);
    int i = 0;
    while (__HOLE__) {
        __BUG__;
        buf[i] = readbyte(seed, i);
        i = i + 1;
    }
}`,
		SpecSrc:      "(and (>= i 0) (< i 12))",
		DevPatch:     "(and (< i count) (< i 12))",
		Failing:      []map[string]int64{{"seed": 3, "count": 30}},
		CompVars:     []string{"i", "count"},
		ParamRange:   interval.New(-16, 16),
		Cmp:          []expr.Op{expr.OpLt},
		Bool:         []expr.Op{expr.OpAnd},
		MaxTemplates: 30,
		Paper: PaperRow{
			CEGISPInit: "130", CEGISPFinal: "130", CEGISRatio: "0%", CEGISPhiE: "13",
			PInit: "130", PFinal: "130", Ratio: "0%", PhiE: "13", PhiS: "1", Rank: "11",
		},
	},
	{
		Project: "Libtiff", BugID: "CVE-2016-5314", Suite: SuiteExtractFix,
		// PixarLogDecode: decoded stride times rows overflows the output
		// buffer; guard on the product's factors.
		Source: `
void main(int stride, int rows) {
    int out[16];
    assume(stride >= 1);
    assume(rows >= 1);
    int need = stride * rows;
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int last = need - 1;
    out[last] = 7;
}`,
		SpecSrc:      "(<= need 16)",
		DevPatch:     "(> need 16)",
		Failing:      []map[string]int64{{"stride": 5, "rows": 4}},
		CompVars:     []string{"need", "stride", "rows"},
		SpecVars:     []string{"need"},
		ParamRange:   interval.New(-20, 20),
		Cmp:          []expr.Op{expr.OpGt},
		Bool:         []expr.Op{expr.OpOr},
		MaxTemplates: 30,
		Paper: PaperRow{
			CEGISPInit: "199", CEGISPFinal: "198", CEGISRatio: "1%", CEGISPhiE: "10",
			PInit: "199", PFinal: "197", Ratio: "1%", PhiE: "21", PhiS: "4", Rank: "2",
		},
	},
	{
		Project: "Libtiff", BugID: "CVE-2016-9273", Suite: SuiteExtractFix,
		// TIFFNumberOfStrips: a crafted rowsperstrip of zero causes a
		// divide-by-zero when computing the strip count.
		Source: `
void main(int length, int rps) {
    assume(length >= 1);
    assume(length <= 64);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int nstrips = (length + rps - 1) / rps;
    int check = nstrips;
}`,
		SpecSrc:  "(distinct rps 0)",
		DevPatch: "(= rps 0)",
		Failing:  []map[string]int64{{"length": 32, "rps": 0}},
		Cmp:      []expr.Op{expr.OpEq, expr.OpLt, expr.OpLe},
		Bool:     []expr.Op{expr.OpOr},
		Paper: PaperRow{
			CEGISPInit: "260", CEGISPFinal: "260", CEGISRatio: "0%", CEGISPhiE: "5",
			PInit: "260", PFinal: "141", Ratio: "46%", PhiE: "10", PhiS: "2", Rank: "8",
		},
	},
	{
		Project: "Libtiff", BugID: "bugzilla-2633", Suite: SuiteExtractFix,
		// tiffcrop YCbCr subsampling: only 1, 2 and 4 are legal sampling
		// factors; anything else walks off the sample tables.
		Source: `
void main(int h, int v) {
    int table[5];
    assume(h >= 0);
    assume(v >= 0);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    table[h] = 1;
    table[v] = 2;
}`,
		SpecSrc:      "(and (<= h 4) (<= v 4))",
		DevPatch:     "(or (> h 4) (> v 4))",
		Failing:      []map[string]int64{{"h": 8, "v": 2}},
		Params:       []string{"a"},
		Cmp:          []expr.Op{expr.OpGt},
		Bool:         []expr.Op{expr.OpOr},
		MaxTemplates: 40,
		Paper: PaperRow{
			CEGISPInit: "130", CEGISPFinal: "130", CEGISRatio: "0%", CEGISPhiE: "66",
			PInit: "130", PFinal: "130", Ratio: "0%", PhiE: "109", PhiS: "21", Rank: "8",
		},
	},
	{
		Project: "Libtiff", BugID: "CVE-2016-10094", Suite: SuiteExtractFix,
		// tiff2pdf t2p_readwrite_pdf_image: the JPEG header copy needs
		// count > 4; the developer patch compares against the constant 4
		// (the Table 5 subject: the parameter range must contain 4).
		Source: `
void main(int count, int pos) {
    int hdr[8];
    assume(pos >= 0);
    assume(pos < 8);
    assume(count <= 12);
    if (count > 0) {
        if (__HOLE__) {
            return;
        }
        __BUG__;
        int idx = count - 5;
        hdr[idx] = pos;
    }
}`,
		SpecSrc:  "(and (>= (- count 5) 0) (< (- count 5) 8))",
		DevPatch: "(<= count 4)",
		Failing:  []map[string]int64{{"count": 2, "pos": 1}},
		Cmp:      []expr.Op{expr.OpLe, expr.OpLt, expr.OpGe},
		Bool:     []expr.Op{expr.OpOr},
		Paper: PaperRow{
			CEGISPInit: "130", CEGISPFinal: "130", CEGISRatio: "0%", CEGISPhiE: "23",
			PInit: "130", PFinal: "77", Ratio: "41%", PhiE: "34", PhiS: "114", Rank: "6",
		},
	},
	{
		Project: "Libtiff", BugID: "CVE-2017-7601", Suite: SuiteExtractFix,
		// tif_jpeg: bits-per-sample drives a shift; values above 16 shift
		// out of range (modeled as a table of legal shift widths).
		Source: `
void main(int bps, int mode) {
    int shifttab[17];
    if (__HOLE__) {
        return;
    }
    __BUG__;
    shifttab[bps] = mode;
}`,
		SpecSrc:      "(and (>= bps 0) (<= bps 16))",
		DevPatch:     "(or (< bps 0) (> bps 16))",
		Failing:      []map[string]int64{{"bps": 62, "mode": 0}},
		CompVars:     []string{"bps"},
		ParamRange:   interval.New(-16, 16),
		Cmp:          []expr.Op{expr.OpLt, expr.OpGt},
		Bool:         []expr.Op{expr.OpOr},
		MaxTemplates: 30,
		Paper: PaperRow{
			CEGISPInit: "94", CEGISPFinal: "94", CEGISRatio: "0%", CEGISPhiE: "27",
			PInit: "94", PFinal: "94", Ratio: "0%", PhiE: "78", PhiS: "107", Rank: "2",
		},
	},
	{
		Project: "Libtiff", BugID: "CVE-2016-3623", Suite: SuiteExtractFix,
		// rgb2ycbcr cvtRaster: the paper's illustrative example — the
		// horizontal/vertical subsampling factors divide the strip size.
		Source: `
void main(int h, int v) {
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int cc = 512 / h;
    int dd = cc / v;
}`,
		SpecSrc:      "(and (distinct h 0) (distinct v 0))",
		DevPatch:     "(or (= h 0) (= v 0))",
		Failing:      []map[string]int64{{"h": 7, "v": 0}},
		Cmp:          []expr.Op{expr.OpEq, expr.OpGe, expr.OpLt},
		Bool:         []expr.Op{expr.OpOr},
		MaxTemplates: 40,
		Paper: PaperRow{
			CEGISPInit: "130", CEGISPFinal: "130", CEGISRatio: "0%", CEGISPhiE: "60",
			PInit: "130", PFinal: "100", Ratio: "23%", PhiE: "102", PhiS: "21", Rank: "1",
		},
	},
	{
		Project: "Libtiff", BugID: "CVE-2017-7595", Suite: SuiteExtractFix,
		// tif_jpeg JPEGSetupEncode: vertical sampling of zero divides the
		// downsampled height.
		Source: `
void main(int height, int vs) {
    assume(height >= 1);
    assume(height <= 64);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int down = (height + vs - 1) / vs;
    int rows = down + 1;
}`,
		SpecSrc:  "(distinct vs 0)",
		DevPatch: "(= vs 0)",
		Failing:  []map[string]int64{{"height": 16, "vs": 0}},
		Cmp:      []expr.Op{expr.OpEq, expr.OpLe},
		Bool:     []expr.Op{expr.OpOr},
		Paper: PaperRow{
			CEGISPInit: "130", CEGISPFinal: "130", CEGISRatio: "0%", CEGISPhiE: "10",
			PInit: "130", PFinal: "130", Ratio: "0%", PhiE: "18", PhiS: "31", Rank: "1",
		},
	},
	{
		Project: "Libtiff", BugID: "bugzilla-2611", Suite: SuiteExtractFix,
		// tiffmedian: the histogram loop index is driven by a color value
		// that may exceed the histogram size (condition repair).
		Source: `
void main(int color, int limit) {
    int hist[10];
    assume(color >= 0);
    assume(color <= 20);
    assume(limit >= 0);
    assume(limit <= 20);
    int j = color;
    while (__HOLE__) {
        __BUG__;
        hist[j] = hist[j] + 1;
        j = j + 1;
    }
}`,
		SpecSrc:      "(and (>= j 0) (< j 10))",
		DevPatch:     "(and (< j limit) (< j 10))",
		Failing:      []map[string]int64{{"color": 4, "limit": 14}},
		CompVars:     []string{"j", "limit"},
		Params:       []string{"a"},
		ParamRange:   interval.New(-12, 12),
		Cmp:          []expr.Op{expr.OpLt},
		Bool:         []expr.Op{expr.OpAnd},
		MaxTemplates: 30,
		Paper: PaperRow{
			CEGISPInit: "130", CEGISPFinal: "130", CEGISRatio: "0%", CEGISPhiE: "61",
			PInit: "130", PFinal: "112", Ratio: "14%", PhiE: "87", PhiS: "15", Rank: "1",
		},
	},
	{
		Project: "Binutils", BugID: "CVE-2018-10372", Suite: SuiteExtractFix,
		// readelf process_cu_tu_index: the section count read from the
		// file must fit the table; otherwise the pointer walk overflows.
		Source: `
void main(int ncols, int nused) {
    int table[24];
    assume(nused >= 0);
    assume(nused <= 24);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int end = ncols * 2;
    table[end] = nused;
}`,
		SpecSrc:      "(and (>= (* ncols 2) 0) (< (* ncols 2) 24))",
		DevPatch:     "(or (< ncols 0) (>= ncols 12))",
		Failing:      []map[string]int64{{"ncols": 15, "nused": 4}},
		CompVars:     []string{"ncols"},
		Params:       []string{"a"},
		Consts:       []int64{0},
		ParamRange:   interval.New(-16, 16),
		MaxTemplates: 30,
		Cmp:          []expr.Op{expr.OpLt, expr.OpGe},
		Bool:         []expr.Op{expr.OpOr},
		Paper: PaperRow{
			CEGISPInit: "74", CEGISPFinal: "74", CEGISRatio: "0%", CEGISPhiE: "9",
			PInit: "74", PFinal: "39", Ratio: "47%", PhiE: "25", PhiS: "1", Rank: "33",
		},
	},
	{
		Project: "Binutils", BugID: "CVE-2017-15025", Suite: SuiteExtractFix,
		// dwarf2.c decode_line_info: a line range of zero divides the
		// special-opcode decoding.
		Source: `
void main(int opcode, int range) {
    assume(opcode >= 0);
    assume(opcode <= 255);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int adv = opcode / range;
    int line = adv + 1;
}`,
		SpecSrc:  "(distinct range 0)",
		DevPatch: "(= range 0)",
		Failing:  []map[string]int64{{"opcode": 13, "range": 0}},
		Cmp:      []expr.Op{expr.OpEq, expr.OpLt},
		Bool:     []expr.Op{expr.OpOr},
		Paper: PaperRow{
			CEGISPInit: "130", CEGISPFinal: "130", CEGISRatio: "0%", CEGISPhiE: "0",
			PInit: "130", PFinal: "130", Ratio: "0%", PhiE: "0", PhiS: "0", Rank: "6",
		},
	},
	{
		Project: "Libxml2", BugID: "CVE-2016-1834", Suite: SuiteExtractFix,
		// xmlStrncat: a negative length wraps the copy size (modeled as a
		// negative index walk).
		Source: `
void main(int len, int add) {
    int buf[20];
    assume(add >= 0);
    assume(add <= 10);
    int total = len + add;
    if (__HOLE__) {
        return;
    }
    __BUG__;
    buf[total] = 1;
}`,
		SpecSrc:      "(and (>= total 0) (< total 20))",
		DevPatch:     "(or (< total 0) (>= total 20))",
		Failing:      []map[string]int64{{"len": -6, "add": 2}},
		CompVars:     []string{"total"},
		Params:       []string{"a"},
		Consts:       []int64{0},
		SpecVars:     []string{"total"},
		ParamRange:   interval.New(-20, 20),
		Cmp:          []expr.Op{expr.OpLt, expr.OpGe},
		Bool:         []expr.Op{expr.OpOr},
		MaxTemplates: 40,
		Paper: PaperRow{
			CEGISPInit: "260", CEGISPFinal: "260", CEGISRatio: "0%", CEGISPhiE: "6",
			PInit: "260", PFinal: "260", Ratio: "0%", PhiE: "22", PhiS: "0", Rank: "12",
		},
	},
	{
		Project: "Libxml2", BugID: "CVE-2016-1838", Suite: SuiteExtractFix,
		// xmlParserPrintFileContextInternal: the context window end runs
		// past the buffer length.
		Source: `
void main(int cur, int n) {
    int content[16];
    assume(cur >= 0);
    assume(n >= 0);
    int last = cur + n;
    if (__HOLE__) {
        return;
    }
    __BUG__;
    content[last] = 0;
}`,
		SpecSrc:      "(< last 16)",
		DevPatch:     "(>= last 16)",
		Failing:      []map[string]int64{{"cur": 10, "n": 9}},
		CompVars:     []string{"cur", "n", "last"},
		SpecVars:     []string{"last"},
		ParamRange:   interval.New(-16, 16),
		Cmp:          []expr.Op{expr.OpGe},
		Bool:         []expr.Op{expr.OpOr},
		MaxTemplates: 20,
		Paper: PaperRow{
			CEGISPInit: "199", CEGISPFinal: "199", CEGISRatio: "0%", CEGISPhiE: "4",
			PInit: "199", PFinal: "199", Ratio: "0%", PhiE: "4", PhiS: "0", Rank: "10",
		},
	},
	{
		Project: "Libxml2", BugID: "CVE-2016-1839", Suite: SuiteExtractFix,
		// xmlDictComputeFastQKey: the prefix length walks backwards below
		// the start of the name buffer.
		Source: `
void main(int plen, int seed) {
    int name[12];
    assume(seed >= 0);
    assume(seed <= 5);
    assume(plen <= 12);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int idx = plen - 1;
    int k = name[idx] + seed;
}`,
		SpecSrc:  "(and (>= (- plen 1) 0) (< (- plen 1) 12))",
		DevPatch: "(< plen 1)",
		Failing:  []map[string]int64{{"plen": 0, "seed": 2}},
		CompVars: []string{"plen"},
		Params:   []string{"a"},
		Cmp:      []expr.Op{expr.OpLt, expr.OpGt},
		Bool:     []expr.Op{expr.OpOr},
		Paper: PaperRow{
			CEGISPInit: "65", CEGISPFinal: "65", CEGISRatio: "0%", CEGISPhiE: "0",
			PInit: "65", PFinal: "65", Ratio: "0%", PhiE: "0", PhiS: "0", Rank: "14",
		},
	},
	{
		Project: "Libxml2", BugID: "CVE-2012-5134", Suite: SuiteExtractFix,
		// xmlParseAttValueComplex: when the value is empty, the trailing
		// quote trim decrements the length below zero.
		Source: `
void main(int len, int quoted) {
    int val[8];
    assume(quoted >= 0);
    assume(quoted <= 1);
    assume(len >= 0);
    assume(len <= 8);
    if (quoted == 1) {
        if (__HOLE__) {
            return;
        }
        __BUG__;
        int last = len - 1;
        val[last] = 0;
    }
}`,
		SpecSrc:  "(>= (- len 1) 0)",
		DevPatch: "(<= len 0)",
		Failing:  []map[string]int64{{"len": 0, "quoted": 1}},
		Cmp:      []expr.Op{expr.OpLe, expr.OpEq, expr.OpGt},
		Bool:     []expr.Op{expr.OpOr},
		Paper: PaperRow{
			CEGISPInit: "260", CEGISPFinal: "260", CEGISRatio: "0%", CEGISPhiE: "44",
			PInit: "260", PFinal: "134", Ratio: "48%", PhiE: "80", PhiS: "271", Rank: "7",
		},
	},
	{
		Project: "Libxml2", BugID: "CVE-2017-5969", Suite: SuiteExtractFix,
		// xmlDumpElementContent: a NULL content node for an empty DTD
		// declaration is dereferenced (modeled as a validity flag).
		Source: `
void main(int ctype, int depth) {
    int node[4];
    assume(depth >= 0);
    assume(depth <= 3);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int slot = ctype;
    node[slot] = depth;
}`,
		SpecSrc:      "(and (>= ctype 0) (< ctype 4))",
		DevPatch:     "(or (< ctype 0) (> ctype 3))",
		Failing:      []map[string]int64{{"ctype": -3, "depth": 1}},
		CompVars:     []string{"ctype"},
		Params:       []string{"a"},
		Consts:       []int64{0},
		Cmp:          []expr.Op{expr.OpLt, expr.OpGt, expr.OpEq},
		Bool:         []expr.Op{expr.OpOr},
		MaxTemplates: 30,
		Paper: PaperRow{
			CEGISPInit: "260", CEGISPFinal: "260", CEGISRatio: "0%", CEGISPhiE: "0",
			PInit: "260", PFinal: "154", Ratio: "41%", PhiE: "21", PhiS: "2", Rank: "1",
		},
	},
	{
		Project: "Libjpeg", BugID: "CVE-2018-14498", Suite: SuiteExtractFix,
		// rdbmp get_8bit_row: a colormap index read from the file exceeds
		// the map size.
		Source: `
void main(int cidx, int maplen) {
    int cmap[16];
    assume(cidx >= 0);
    assume(maplen >= 1);
    assume(maplen <= 16);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int v = cmap[cidx];
    int w = v + 1;
}`,
		SpecSrc:  "(and (>= cidx 0) (< cidx 16))",
		DevPatch: "(>= cidx maplen)",
		Failing:  []map[string]int64{{"cidx": 30, "maplen": 8}},
		Cmp:      []expr.Op{expr.OpGe, expr.OpLt},
		Bool:     []expr.Op{expr.OpOr},
		Paper: PaperRow{
			CEGISPInit: "260", CEGISPFinal: "260", CEGISRatio: "0%", CEGISPhiE: "42",
			PInit: "260", PFinal: "128", Ratio: "51%", PhiE: "78", PhiS: "108", Rank: "2",
		},
	},
	{
		Project: "Libjpeg", BugID: "CVE-2018-19664", Suite: SuiteExtractFix,
		// djpeg: output color space conversion with quantization reads a
		// table indexed by the component count.
		Source: `
void main(int ncomp, int quant) {
    int limit[5];
    assume(quant >= 0);
    assume(quant <= 1);
    if (quant == 1) {
        if (__HOLE__) {
            return;
        }
        __BUG__;
        limit[ncomp] = 255;
    }
}`,
		SpecSrc:      "(and (>= ncomp 0) (< ncomp 5))",
		DevPatch:     "(or (< ncomp 1) (> ncomp 4))",
		Failing:      []map[string]int64{{"ncomp": 9, "quant": 1}},
		CompVars:     []string{"ncomp"},
		Params:       []string{"a"},
		Consts:       []int64{1},
		Cmp:          []expr.Op{expr.OpLt, expr.OpGt},
		Bool:         []expr.Op{expr.OpOr},
		MaxTemplates: 30,
		Paper: PaperRow{
			CEGISPInit: "130", CEGISPFinal: "130", CEGISRatio: "0%", CEGISPhiE: "43",
			PInit: "130", PFinal: "130", Ratio: "0%", PhiE: "84", PhiS: "26", Rank: "1",
		},
	},
	{
		Project: "Libjpeg", BugID: "CVE-2017-15232", Suite: SuiteExtractFix,
		// jquant2 post-processing: with zero output rows the row pointer
		// is NULL; modeled as a row count that must stay positive.
		Source: `
void main(int rows, int width) {
    assume(width >= 1);
    assume(width <= 32);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int per = width / rows;
    int check = per;
}`,
		SpecSrc:      "(> rows 0)",
		DevPatch:     "(<= rows 0)",
		Failing:      []map[string]int64{{"rows": 0, "width": 16}},
		ParamRange:   interval.New(-30, 30),
		Cmp:          []expr.Op{expr.OpLe, expr.OpEq, expr.OpGe, expr.OpLt, expr.OpGt, expr.OpNe},
		Bool:         []expr.Op{expr.OpOr, expr.OpAnd},
		MaxTemplates: 28,
		Paper: PaperRow{
			CEGISPInit: "955", CEGISPFinal: "955", CEGISRatio: "0%", CEGISPhiE: "0",
			PInit: "955", PFinal: "955", Ratio: "0%", PhiE: "0", PhiS: "0", Rank: "26",
		},
	},
	{
		Project: "Libjpeg", BugID: "CVE-2012-2806", Suite: SuiteExtractFix,
		// jdmarker get_sof: a component index beyond MAX_COMPS_IN_SCAN
		// overruns the component-info array.
		Source: `
void main(int ci, int nf) {
    int comp[10];
    assume(nf >= 1);
    assume(nf <= 10);
    if (ci >= 0) {
        if (__HOLE__) {
            return;
        }
        __BUG__;
        comp[ci] = nf;
    }
}`,
		SpecSrc:    "(and (>= ci 0) (< ci 10))",
		DevPatch:   "(>= ci 10)",
		Failing:    []map[string]int64{{"ci": 13, "nf": 3}},
		ParamRange: interval.New(-12, 12),
		Cmp:        []expr.Op{expr.OpGe, expr.OpGt, expr.OpEq},
		Bool:       []expr.Op{expr.OpOr},
		Paper: PaperRow{
			CEGISPInit: "260", CEGISPFinal: "259", CEGISRatio: "0%", CEGISPhiE: "68",
			PInit: "260", PFinal: "145", Ratio: "44%", PhiE: "110", PhiS: "3", Rank: "3",
		},
	},
	{
		Project: "FFmpeg", BugID: "CVE-2017-9992", Suite: SuiteExtractFix,
		Unsupported: "test driver crashed the concolic engine in the original experiment (reported N/A in Table 1)",
		Paper: PaperRow{
			CEGISPInit: "N/A", CEGISPFinal: "N/A", CEGISRatio: "N/A", CEGISPhiE: "N/A",
			PInit: "N/A", PFinal: "N/A", Ratio: "N/A", PhiE: "N/A", PhiS: "N/A", Rank: "N/A",
		},
	},
	{
		Project: "FFmpeg", BugID: "Bugzilla-1404", Suite: SuiteExtractFix,
		Unsupported: "test driver crashed the concolic engine in the original experiment (reported N/A in Table 1)",
		Paper: PaperRow{
			CEGISPInit: "N/A", CEGISPFinal: "N/A", CEGISRatio: "N/A", CEGISPhiE: "N/A",
			PInit: "N/A", PFinal: "N/A", Ratio: "N/A", PhiE: "N/A", PhiS: "N/A", Rank: "N/A",
		},
	},
	{
		Project: "Jasper", BugID: "CVE-2016-8691", Suite: SuiteExtractFix,
		// jpc_dec: a horizontal step of zero divides the component grid
		// width (the Table 5 parameter-range subject).
		Source: `
void main(int width, int hstep) {
    assume(width >= 1);
    assume(width <= 64);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int cols = (width + hstep - 1) / hstep;
    int check = cols;
}`,
		SpecSrc:  "(distinct hstep 0)",
		DevPatch: "(= hstep 0)",
		Failing:  []map[string]int64{{"width": 10, "hstep": 0}},
		Cmp:      []expr.Op{expr.OpEq, expr.OpLt, expr.OpLe},
		Bool:     []expr.Op{expr.OpOr},
		Paper: PaperRow{
			CEGISPInit: "260", CEGISPFinal: "260", CEGISRatio: "0%", CEGISPhiE: "72",
			PInit: "260", PFinal: "96", Ratio: "63%", PhiE: "69", PhiS: "7", Rank: "1",
		},
	},
	{
		Project: "Jasper", BugID: "CVE-2016-9387", Suite: SuiteExtractFix,
		// jpc_dec_process_siz: an oversized delta makes the tile height
		// negative, later used as an allocation size.
		Source: `
void main(int ystart, int yend) {
    int tile[12];
    assume(ystart >= 0);
    assume(yend <= 11);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int h = yend - ystart;
    tile[h] = 1;
}`,
		SpecSrc:      "(and (>= (- yend ystart) 0) (< (- yend ystart) 12))",
		DevPatch:     "(< yend ystart)",
		Failing:      []map[string]int64{{"ystart": 9, "yend": 2}},
		Cmp:          []expr.Op{expr.OpLt},
		Bool:         []expr.Op{expr.OpOr},
		MaxTemplates: 10,
		Paper: PaperRow{
			CEGISPInit: "65", CEGISPFinal: "65", CEGISRatio: "0%", CEGISPhiE: "54",
			PInit: "65", PFinal: "17", Ratio: "74%", PhiE: "111", PhiS: "1", Rank: "✗",
		},
	},
	{
		Project: "Coreutils", BugID: "Bugzilla-26545", Suite: SuiteExtractFix,
		// shred: the block size computation loses the remainder for
		// odd sizes, over-reading the tail buffer.
		Source: `
void main(int size, int bsize) {
    int tail[8];
    assume(bsize >= 1);
    assume(bsize <= 8);
    assume(size >= 0);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int rem = size % bsize;
    tail[rem + bsize - 1] = 1;
}`,
		SpecSrc:      "(< (+ (rem size bsize) bsize) 9)",
		DevPatch:     "(> bsize 4)",
		Failing:      []map[string]int64{{"size": 13, "bsize": 7}},
		ParamRange:   interval.New(-30, 30),
		Cmp:          []expr.Op{expr.OpGt, expr.OpGe, expr.OpLt, expr.OpLe, expr.OpEq, expr.OpNe},
		Bool:         []expr.Op{expr.OpOr, expr.OpAnd},
		MaxTemplates: 30,
		Paper: PaperRow{
			CEGISPInit: "1025", CEGISPFinal: "1025", CEGISRatio: "0%", CEGISPhiE: "74",
			PInit: "1025", PFinal: "949", Ratio: "7%", PhiE: "119", PhiS: "2", Rank: "25",
		},
	},
	{
		Project: "Coreutils", BugID: "GNUBug-25003", Suite: SuiteExtractFix,
		// split -n: the chunk start for the last chunk may pass the file
		// end when the size is not divisible.
		Source: `
void main(int fsize, int chunks) {
    int file[16];
    assume(chunks >= 1);
    assume(chunks <= 8);
    assume(fsize >= 0);
    assume(fsize <= 16);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int per = fsize / chunks;
    int start = per * chunks;
    file[start] = 1;
}`,
		SpecSrc:    "(< (* (div fsize chunks) chunks) 16)",
		DevPatch:   "(>= fsize 16)",
		Failing:    []map[string]int64{{"fsize": 16, "chunks": 2}},
		ParamRange: interval.New(-20, 20),
		Cmp:        []expr.Op{expr.OpGe, expr.OpGt, expr.OpEq},
		Bool:       []expr.Op{expr.OpOr},
		Paper: PaperRow{
			CEGISPInit: "199", CEGISPFinal: "198", CEGISRatio: "1%", CEGISPhiE: "114",
			PInit: "199", PFinal: "172", Ratio: "14%", PhiE: "196", PhiS: "0", Rank: "6",
		},
	},
	{
		Project: "Coreutils", BugID: "GNUBug-25023", Suite: SuiteExtractFix,
		// pr: the column separator length is subtracted from the width
		// without checking it fits.
		Source: `
void main(int width, int sep) {
    int line[8];
    assume(sep >= 0);
    assume(sep <= 4);
    assume(width >= 0);
    assume(width <= 8);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int cols = width - sep - 1;
    line[cols] = 1;
}`,
		SpecSrc:      "(>= (- (- width sep) 1) 0)",
		DevPatch:     "(<= width sep)",
		Failing:      []map[string]int64{{"width": 2, "sep": 3}},
		Cmp:          []expr.Op{expr.OpLe},
		Bool:         []expr.Op{expr.OpOr},
		MaxTemplates: 10,
		Paper: PaperRow{
			CEGISPInit: "64", CEGISPFinal: "64", CEGISRatio: "0%", CEGISPhiE: "32",
			PInit: "64", PFinal: "64", Ratio: "0%", PhiE: "1", PhiS: "2", Rank: "7",
		},
	},
	{
		Project: "Coreutils", BugID: "Bugzilla-19784", Suite: SuiteExtractFix,
		// make-prime-list: the sieve loop index squared overflows the
		// sieve bound (modeled with a squared index guard).
		Source: `
void main(int p, int bound) {
    int sieve[30];
    assume(bound >= 1);
    assume(bound <= 30);
    assume(p >= 2);
    assume(p <= 10);
    int sq = p * p;
    if (__HOLE__) {
        return;
    }
    __BUG__;
    sieve[sq] = 1;
}`,
		SpecSrc:      "(< sq 30)",
		DevPatch:     "(> sq 29)",
		Failing:      []map[string]int64{{"p": 6, "bound": 20}},
		CompVars:     []string{"sq", "p"},
		SpecVars:     []string{"sq"},
		Params:       []string{"a"},
		ParamRange:   interval.New(-36, 36),
		Cmp:          []expr.Op{expr.OpGt, expr.OpGe},
		Bool:         []expr.Op{expr.OpOr},
		MaxTemplates: 30,
		Paper: PaperRow{
			CEGISPInit: "-", CEGISPFinal: "-", CEGISRatio: "-", CEGISPhiE: "-",
			PInit: "770", PFinal: "770", Ratio: "0%", PhiE: "6", PhiS: "0", Rank: "38",
		},
	},
}

func init() {
	for _, s := range extractFixSubjects {
		if s.Budget.MaxIterations == 0 {
			s.Budget = core.Budget{MaxIterations: 40, ValidationIterations: 8}
		}
	}
}
