// Package bench contains the reproduction benchmark: the 45 subjects of
// the paper's evaluation (30 ExtractFix security vulnerabilities, 5
// ManyBugs defects, 10 SV-COMP logical errors) re-encoded as mini-C
// programs that preserve the bug class, the fix shape, and the
// specification kind of the originals, plus the runners that regenerate
// every table and figure.
//
// Each subject carries the paper's reported numbers so the harness can
// print paper-vs-measured tables (EXPERIMENTS.md is generated from this).
package bench

import (
	"fmt"

	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/synth"
)

// Suite names.
const (
	SuiteExtractFix = "extractfix"
	SuiteManyBugs   = "manybugs"
	SuiteSVCOMP     = "svcomp"
)

// PaperRow holds the numbers the paper reports for a subject, verbatim,
// for side-by-side comparison. Empty strings mean "not reported".
type PaperRow struct {
	// CEGIS columns of Table 1.
	CEGISPInit, CEGISPFinal, CEGISRatio, CEGISPhiE string
	// CPR columns of Tables 1, 3 and 4.
	PInit, PFinal, Ratio, PhiE, PhiS, Rank string
}

// Subject is one benchmark entry.
type Subject struct {
	// Project and BugID identify the original subject (e.g. Libtiff /
	// CVE-2016-5321); Suite selects the table it belongs to.
	Project, BugID, Suite string
	// Source is the mini-C re-encoding.
	Source string
	// SpecSrc is the specification σ in s-expression syntax over the
	// variables in scope at the bug location.
	SpecSrc string
	// DevPatch is the developer patch in s-expression syntax.
	DevPatch string
	// Failing are the error-exposing inputs.
	Failing []map[string]int64
	// Params and ParamRange configure the abstract-patch parameters
	// (default: a, b in [-10, 10]).
	Params     []string
	ParamRange interval.Interval
	// Consts are extra integer constant components.
	Consts []int64
	// CompVars overrides the variable components: names of integer locals
	// in scope at the hole (default: the program inputs). CompBoolVars
	// adds boolean locals.
	CompVars     []string
	CompBoolVars []string
	// SpecVars declares additional local names referenced by SpecSrc or
	// DevPatch beyond the built-in common names.
	SpecVars []string
	// Arith, Cmp, Bool select operator components (nil = subject default:
	// no arithmetic, all comparisons, or/and).
	Arith, Cmp, Bool []expr.Op
	// MaxTemplates caps the pool (default 24).
	MaxTemplates int
	// InputLo/InputHi bound every input during exploration (default
	// [-100, 100]).
	InputLo, InputHi int64
	// Budget overrides the default exploration budget.
	Budget core.Budget
	// Unsupported marks subjects the harness cannot run (the paper's two
	// FFmpeg subjects fail in the test driver); the reason is reported as
	// N/A in the tables.
	Unsupported string
	// Paper holds the numbers reported in the paper for this subject.
	Paper PaperRow

	parsed bool
	prog   *lang.Program
	err    error
}

// ID returns "Project/BugID".
func (s *Subject) ID() string { return s.Project + "/" + s.BugID }

// Program parses (once) and returns the subject program. Subjects are not
// safe for concurrent use.
func (s *Subject) Program() (*lang.Program, error) {
	if !s.parsed {
		s.prog, s.err = lang.Parse(s.Source)
		s.parsed = true
	}
	return s.prog, s.err
}

// paramRange returns the parameter range (default [-10, 10], §5 setup).
func (s *Subject) paramRange() interval.Interval {
	if s.ParamRange == (interval.Interval{}) {
		return interval.New(-10, 10)
	}
	return s.ParamRange
}

func (s *Subject) inputRange() interval.Interval {
	if s.InputLo == 0 && s.InputHi == 0 {
		return interval.New(-100, 100)
	}
	return interval.New(s.InputLo, s.InputHi)
}

// Components builds the synthesis language for the subject: the program's
// input variables (plus any hole-scope locals the encoding names) as
// variable components, with the subject's operator selections.
func (s *Subject) Components() (synth.Components, error) {
	prog, err := s.Program()
	if err != nil {
		return synth.Components{}, err
	}
	vars := make(map[string]lang.Type)
	if len(s.CompVars) == 0 && len(s.CompBoolVars) == 0 {
		for _, p := range prog.Inputs() {
			vars[p.Name] = p.Type
		}
	}
	for _, n := range s.CompVars {
		vars[n] = lang.TypeInt
	}
	for _, n := range s.CompBoolVars {
		vars[n] = lang.TypeBool
	}
	params := s.Params
	if params == nil {
		params = []string{"a", "b"}
	}
	cmp := s.Cmp
	if cmp == nil {
		cmp = []expr.Op{expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe}
	}
	boolOps := s.Bool
	if boolOps == nil {
		boolOps = []expr.Op{expr.OpOr, expr.OpAnd}
	}
	arith := s.Arith
	if arith == nil {
		arith = []expr.Op{}
	}
	maxT := s.MaxTemplates
	if maxT == 0 {
		maxT = 24
	}
	return synth.Components{
		Vars:         vars,
		Consts:       s.Consts,
		Params:       params,
		ParamRange:   s.paramRange(),
		Arith:        arith,
		Cmp:          cmp,
		Bool:         boolOps,
		MaxTemplates: maxT,
	}, nil
}

// Spec parses the subject's specification.
func (s *Subject) Spec() (*expr.Term, error) {
	prog, err := s.Program()
	if err != nil {
		return nil, err
	}
	return expr.Parse(s.SpecSrc, s.specVars(prog))
}

// DevPatchTerm parses the developer patch.
func (s *Subject) DevPatchTerm() (*expr.Term, error) {
	prog, err := s.Program()
	if err != nil {
		return nil, err
	}
	return expr.Parse(s.DevPatch, s.specVars(prog))
}

// specVars declares every input plus common local names for parsing
// subject specs/patches. Locals used in specs must be ints unless listed
// in CompBoolVars.
func (s *Subject) specVars(prog *lang.Program) map[string]expr.Sort {
	m := make(map[string]expr.Sort)
	for _, n := range s.SpecVars {
		m[n] = expr.SortInt
	}
	for _, n := range s.CompVars {
		m[n] = expr.SortInt
	}
	for _, n := range s.CompBoolVars {
		m[n] = expr.SortBool
	}
	for _, p := range prog.Inputs() {
		if p.Type == lang.TypeBool {
			m[p.Name] = expr.SortBool
		} else {
			m[p.Name] = expr.SortInt
		}
	}
	// Common local variable names appearing in bug-site specs.
	for _, n := range []string{"i", "j", "k", "n", "s", "t", "len", "idx", "acc", "sum", "cur", "prev", "total", "size", "off", "pos", "v", "w", "q", "r"} {
		if _, ok := m[n]; !ok {
			m[n] = expr.SortInt
		}
	}
	return m
}

// Job assembles the repair job for the subject (scaled by budget).
func (s *Subject) Job(budget core.Budget) (core.Job, error) {
	prog, err := s.Program()
	if err != nil {
		return core.Job{}, err
	}
	spec, err := s.Spec()
	if err != nil {
		return core.Job{}, fmt.Errorf("%s: spec: %w", s.ID(), err)
	}
	comp, err := s.Components()
	if err != nil {
		return core.Job{}, err
	}
	inputBounds := make(map[string]interval.Interval)
	for _, p := range prog.Inputs() {
		inputBounds[p.Name] = s.inputRange()
	}
	if budget.MaxIterations == 0 {
		// Fall back to the subject's iteration defaults but keep any
		// caller-supplied wall-clock cap.
		dur, dl := budget.MaxDuration, budget.Deadline
		budget = s.Budget
		if dur > 0 {
			budget.MaxDuration = dur
		}
		if !dl.IsZero() {
			budget.Deadline = dl
		}
	}
	return core.Job{
		Program:       prog,
		Spec:          spec,
		FailingInputs: s.Failing,
		Components:    comp,
		InputBounds:   inputBounds,
		Budget:        budget,
	}, nil
}

// Catalog returns all subjects of a suite in table order.
func Catalog(suite string) []*Subject {
	switch suite {
	case SuiteExtractFix:
		return extractFixSubjects
	case SuiteManyBugs:
		return manyBugsSubjects
	case SuiteSVCOMP:
		return svcompSubjects
	}
	return nil
}

// Find returns the subject with the given project and bug id.
func Find(project, bugID string) *Subject {
	for _, suite := range []string{SuiteExtractFix, SuiteManyBugs, SuiteSVCOMP} {
		for _, s := range Catalog(suite) {
			if s.Project == project && s.BugID == bugID {
				return s
			}
		}
	}
	return nil
}
