package bench

import (
	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/interval"
)

// manyBugsSubjects re-encode the 5 ManyBugs defects of Table 3: general
// (non-security) errors repaired from failing tests, demonstrating CPR as
// a general-purpose test-guided repair tool.
var manyBugsSubjects = []*Subject{
	{
		Project: "Libtiff", BugID: "ee65c74", Suite: SuiteManyBugs,
		// tif_dirwrite: the offset written for a directory entry must
		// stay word-aligned; the buggy guard accepted odd offsets.
		Source: `
void main(int off, int count) {
    assume(count >= 0);
    assume(count <= 8);
    int aligned = off % 2;
    if (__HOLE__) {
        return;
    }
    __BUG__;
    assert(aligned == 0);
}`,
		SpecSrc:      "(= aligned 0)",
		DevPatch:     "(distinct aligned 0)",
		Failing:      []map[string]int64{{"off": 7, "count": 2}},
		CompVars:     []string{"aligned", "off"},
		SpecVars:     []string{"aligned"},
		Cmp:          []expr.Op{expr.OpNe, expr.OpEq},
		Consts:       []int64{0},
		Bool:         []expr.Op{expr.OpOr},
		MaxTemplates: 12,
		Paper: PaperRow{
			PInit: "6", PFinal: "6", Ratio: "0%", PhiE: "29", PhiS: "90", Rank: "1",
		},
	},
	{
		Project: "Libtiff", BugID: "865f7b2", Suite: SuiteManyBugs,
		// tif_jpeg cleanup: the downsampled buffer release ran for the
		// wrong component count.
		Source: `
void main(int ncomp, int alloc) {
    int bufs[6];
    assume(alloc >= 0);
    assume(alloc <= 6);
    int i = 0;
    while (__HOLE__) {
        __BUG__;
        bufs[i] = 0;
        i = i + 1;
    }
}`,
		SpecSrc:      "(and (>= i 0) (< i 6))",
		DevPatch:     "(and (< i ncomp) (< i 6))",
		Failing:      []map[string]int64{{"ncomp": 9, "alloc": 4}},
		CompVars:     []string{"i", "ncomp"},
		Params:       []string{"a"},
		Cmp:          []expr.Op{expr.OpLt},
		Bool:         []expr.Op{expr.OpAnd},
		MaxTemplates: 30,
		Paper: PaperRow{
			PInit: "130", PFinal: "130", Ratio: "0%", PhiE: "24", PhiS: "68", Rank: "5",
		},
	},
	{
		Project: "Libtiff", BugID: "7d6e298", Suite: SuiteManyBugs,
		// tiff2ps: the page height must use the rounded-up strip count;
		// an integer expression repair (the hole is a RHS).
		Source: `
int main(int length, int rps) {
    assume(rps >= 1);
    assume(rps <= 10);
    assume(length >= 0);
    assume(length <= 50);
    int strips = (length + __HOLE__) / rps;
    __BUG__;
    int expected = (length + rps - 1) / rps;
    assert(strips == expected);
    return strips;
}`,
		SpecSrc:      "(= strips (div (+ length (- rps 1)) rps))",
		DevPatch:     "(- rps 1)",
		SpecVars:     []string{"strips"},
		Failing:      []map[string]int64{{"length": 13, "rps": 5}},
		Params:       []string{},
		Consts:       []int64{1},
		Arith:        []expr.Op{expr.OpSub},
		MaxTemplates: 8,
		Budget:       core.Budget{MaxIterations: 12, ValidationIterations: 6},
		Paper: PaperRow{
			PInit: "4", PFinal: "2", Ratio: "50%", PhiE: "7", PhiS: "7", Rank: "1",
		},
	},
	{
		Project: "gzip", BugID: "884ef6d16c", Suite: SuiteManyBugs,
		// gzip deflate: the hash chain cut-off must compare against the
		// remaining lookahead, not the window size.
		Source: `
void main(int lookahead, int match) {
    int window[32];
    assume(match >= 0);
    assume(lookahead >= 0);
    assume(lookahead <= 32);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int end = match + lookahead;
    window[end] = 1;
}`,
		SpecSrc:      "(< (+ match lookahead) 32)",
		DevPatch:     "(>= (+ match lookahead) 32)",
		Failing:      []map[string]int64{{"lookahead": 20, "match": 15}},
		Params:       []string{"a"},
		Consts:       []int64{32},
		ParamRange:   interval.New(-34, 34),
		Arith:        []expr.Op{expr.OpAdd},
		Cmp:          []expr.Op{expr.OpGe, expr.OpLt},
		Bool:         []expr.Op{expr.OpOr},
		MaxTemplates: 60,
		Paper: PaperRow{
			PInit: "4821", PFinal: "4821", Ratio: "0%", PhiE: "11", PhiS: "0", Rank: "36",
		},
	},
	{
		Project: "gzip", BugID: "f17cbd13a1", Suite: SuiteManyBugs,
		// gzip get_istat: stdin decompression must reject member counts
		// other than one (a boolean flag comparison repair).
		Source: `
void main(bool tostdout, int members) {
    assume(members >= 0);
    assume(members <= 4);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    assert(members == 1);
}`,
		SpecSrc:      "(= members 1)",
		DevPatch:     "(distinct members 1)",
		Failing:      []map[string]int64{{"tostdout": 1, "members": 3}},
		Params:       []string{"a"},
		Consts:       []int64{1},
		Cmp:          []expr.Op{expr.OpNe},
		Bool:         []expr.Op{expr.OpOr},
		MaxTemplates: 6,
		Paper: PaperRow{
			PInit: "2", PFinal: "2", Ratio: "0%", PhiE: "0", PhiS: "1", Rank: "1",
		},
	},
}

func init() {
	for _, s := range manyBugsSubjects {
		if s.Budget.MaxIterations == 0 {
			s.Budget = core.Budget{MaxIterations: 30, ValidationIterations: 8}
		}
	}
}
