package bench

import (
	"fmt"
	"strings"
	"time"

	"cpr/internal/baselines"
	"cpr/internal/cegis"
	"cpr/internal/core"
	"cpr/internal/interval"
	"cpr/internal/patch"
	"cpr/internal/smt"
)

// RunOptions configures a table run.
type RunOptions struct {
	// Budget overrides every subject's exploration budget (zero keeps the
	// per-subject defaults). Benchmarks use small budgets; cmd/cpr-bench
	// runs the defaults.
	Budget core.Budget
	// SubjectTimeout caps each subject's wall-clock time (0 = unbounded).
	// A subject that hits it is reported as a "timeout" row with its
	// best-so-far stats, not dropped from the table.
	SubjectTimeout time.Duration
	// Core tunes the CPR engine; CEGIS tunes the baseline.
	Core  core.Options
	CEGIS cegis.Options
	// Baselines tunes the Table 2 tools.
	Baselines baselines.Options
	// Progress, when non-nil, receives one line per finished subject.
	Progress func(line string)
	// Checkpoint makes suite runs crash-safe: with Dir set, every finished
	// subject row is journaled to <Dir>/suite-<tag>.journal and the
	// in-flight subject writes engine snapshots under <Dir>/subjects/; with
	// Resume, completed rows replay from the journal and the interrupted
	// subject continues from its snapshot. Interval/Keep/Warn pass through
	// to the per-subject engine checkpoints.
	Checkpoint core.CheckpointOptions
}

func (o RunOptions) progress(format string, args ...interface{}) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// Row statuses.
const (
	StatusOK = "ok"
	// StatusTimeout marks a subject that hit SubjectTimeout (or its own
	// wall-clock budget); its stats are the best-so-far anytime result.
	StatusTimeout = "timeout"
	// StatusError marks a subject whose run returned an error; StatusPanic
	// one whose run panicked (recovered — the suite continues).
	StatusError = "error"
	StatusPanic = "panic"
)

// SubjectResult is one measured row (CPR side).
type SubjectResult struct {
	Subject *Subject
	NA      bool
	Err     error
	// Status classifies the row: StatusOK, StatusTimeout, StatusError, or
	// StatusPanic. A crashed or hung subject stays in the table as a row
	// with this status instead of aborting the suite.
	Status string

	CPR core.Stats
	// Wall is the measured wall-clock time of the CPR run (repair only,
	// excluding rank computation).
	Wall       time.Duration
	Rank       int
	RankFound  bool
	CEGISStats cegis.Stats
	// CEGISCorrect reports whether the CEGIS-returned patch covers the
	// developer patch; CEGISGenerated whether it returned one at all.
	CEGISGenerated, CEGISCorrect bool
}

// subjectBudget applies the per-subject wall-clock cap on top of the
// subject's own budget (the tighter of the two wins).
func subjectBudget(b core.Budget, opts RunOptions) core.Budget {
	if opts.SubjectTimeout > 0 && (b.MaxDuration == 0 || opts.SubjectTimeout < b.MaxDuration) {
		b.MaxDuration = opts.SubjectTimeout
	}
	return b
}

// safeRepair isolates one subject run: a panic anywhere below becomes an
// error row instead of killing the whole table.
func safeRepair(job core.Job, opts core.Options) (res *core.Result, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			res, err, panicked = nil, fmt.Errorf("bench: subject run panicked: %v", r), true
		}
	}()
	res, err = core.Repair(job, opts)
	return res, err, false
}

func safeCEGIS(job core.Job, opts cegis.Options) (res *cegis.Result, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			res, err, panicked = nil, fmt.Errorf("bench: cegis run panicked: %v", r), true
		}
	}()
	res, err = cegis.Repair(job, opts)
	return res, err, false
}

// runCPR executes CPR on a subject and computes the correct-patch rank.
func runCPR(s *Subject, opts RunOptions) SubjectResult {
	out := SubjectResult{Subject: s, Status: StatusOK}
	if s.Unsupported != "" {
		out.NA = true
		return out
	}
	job, err := s.Job(opts.Budget)
	if err != nil {
		out.Err = err
		out.Status = StatusError
		return out
	}
	job.Budget = subjectBudget(job.Budget, opts)
	start := time.Now()
	res, err, panicked := safeRepair(job, opts.Core)
	out.Wall = time.Since(start)
	if err != nil {
		out.Err = err
		out.Status = StatusError
		if panicked {
			out.Status = StatusPanic
		}
		return out
	}
	out.CPR = res.Stats
	if res.Stats.TimedOut {
		out.Status = StatusTimeout
	}
	dev, err := s.DevPatchTerm()
	if err != nil {
		out.Err = err
		out.Status = StatusError
		return out
	}
	solver := smt.NewSolver(opts.Core.SMT)
	out.Rank, out.RankFound = core.CorrectPatchRank(solver, res.Ranked, dev, job.InputBounds)
	return out
}

// runCEGIS executes the CEGIS baseline on a subject.
func runCEGIS(s *Subject, opts RunOptions, out *SubjectResult) {
	job, err := s.Job(opts.Budget)
	if err != nil {
		out.Err = err
		return
	}
	job.Budget = subjectBudget(job.Budget, opts)
	res, err, _ := safeCEGIS(job, opts.CEGIS)
	if err != nil {
		return // unsupported hole type, panic, etc.: leave zero stats
	}
	out.CEGISStats = res.Stats
	if res.Patch != nil {
		out.CEGISGenerated = true
		dev, err := s.DevPatchTerm()
		if err != nil {
			return
		}
		solver := smt.NewSolver(opts.CEGIS.SMT)
		concrete := res.ConcreteExpr()
		if concrete != nil {
			p := patch.New(1, concrete, nil)
			ok, _, err := core.Covers(solver, p, dev, job.InputBounds, 0)
			out.CEGISCorrect = err == nil && ok
		}
	}
}

// Table1 runs the ExtractFix suite through both CPR and CEGIS.
func Table1(opts RunOptions) []SubjectResult {
	subjects := Catalog(SuiteExtractFix)
	sj := openSuiteJournal("table1", opts)
	defer sj.close()
	rows := make([]SubjectResult, len(subjects))
	for i, s := range subjects {
		if row, ok := sj.lookup(s); ok {
			rows[i] = row
			opts.progress("table1 %2d/%d %-28s resumed from journal", i+1, len(subjects), s.ID())
			continue
		}
		so := sj.subjectOpts(s, opts)
		rows[i] = runCPR(s, so)
		if !rows[i].NA && rows[i].Err == nil {
			runCEGIS(s, so, &rows[i])
		}
		sj.record(s, rows[i])
		opts.progress("table1 %2d/%d %-28s cpr: %s cegis: %s", i+1, len(subjects), s.ID(),
			cprCell(rows[i]), cegisCell(rows[i]))
	}
	return rows
}

// Table3 runs the ManyBugs suite (CPR only, as in the paper).
func Table3(opts RunOptions) []SubjectResult {
	return runSuite(SuiteManyBugs, "table3", opts)
}

// Table4 runs the SV-COMP suite (CPR only).
func Table4(opts RunOptions) []SubjectResult {
	return runSuite(SuiteSVCOMP, "table4", opts)
}

func runSuite(suite, tag string, opts RunOptions) []SubjectResult {
	subjects := Catalog(suite)
	sj := openSuiteJournal(tag, opts)
	defer sj.close()
	rows := make([]SubjectResult, len(subjects))
	for i, s := range subjects {
		if row, ok := sj.lookup(s); ok {
			rows[i] = row
			opts.progress("%s %2d/%d %-34s resumed from journal", tag, i+1, len(subjects), s.ID())
			continue
		}
		rows[i] = runCPR(s, sj.subjectOpts(s, opts))
		sj.record(s, rows[i])
		opts.progress("%s %2d/%d %-34s cpr: %s", tag, i+1, len(subjects), s.ID(), cprCell(rows[i]))
	}
	return rows
}

func cprCell(r SubjectResult) string {
	if r.NA {
		return "N/A"
	}
	if r.Err != nil {
		return r.Status + ": " + r.Err.Error()
	}
	rank := "✗"
	if r.RankFound {
		rank = fmt.Sprintf("%d", r.Rank)
	}
	cell := fmt.Sprintf("|P| %d→%d (%.0f%%) φE=%d φS=%d rank=%s",
		r.CPR.PInit, r.CPR.PFinal, r.CPR.ReductionRatio()*100,
		r.CPR.PathsExplored, r.CPR.PathsSkipped, rank)
	if r.Status == StatusTimeout {
		cell += " [timeout: best-so-far]"
	}
	return cell
}

func cegisCell(r SubjectResult) string {
	if r.NA {
		return "N/A"
	}
	correct := "✗"
	if r.CEGISCorrect {
		correct = "✓"
	}
	return fmt.Sprintf("|P| %d→%d (%.0f%%) φE=%d correct=%s",
		r.CEGISStats.PInit, r.CEGISStats.PFinal, r.CEGISStats.ReductionRatio()*100,
		r.CEGISStats.PathsExplored, correct)
}

// FormatTable1 renders the measured rows next to the paper's numbers.
func FormatTable1(rows []SubjectResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: CEGIS vs CPR on the ExtractFix benchmark (paper values in parentheses)\n")
	fmt.Fprintf(&b, "%-4s %-30s | %-34s | %s\n", "ID", "Subject", "CEGIS |Pi|→|Pf| ratio φE corr", "CPR |Pi|→|Pf| ratio φE φS rank")
	for i, r := range rows {
		s := r.Subject
		if r.NA {
			fmt.Fprintf(&b, "%-4d %-30s | %-34s | N/A (paper: N/A)\n", i+1, s.ID(), "N/A")
			continue
		}
		if r.Err != nil {
			fmt.Fprintf(&b, "%-4d %-30s | %s: %v\n", i+1, s.ID(), r.Status, r.Err)
			continue
		}
		note := ""
		if r.Status == StatusTimeout {
			note = " [timeout]"
		}
		cc := "✗"
		if r.CEGISCorrect {
			cc = "✓"
		}
		rank := "✗"
		if r.RankFound {
			rank = fmt.Sprintf("%d", r.Rank)
		}
		fmt.Fprintf(&b, "%-4d %-30s | %d→%d %.0f%% φE=%d %s (%s→%s %s φE=%s) | %d→%d %.0f%% φE=%d φS=%d rank=%s (%s→%s %s φE=%s φS=%s rank=%s)%s\n",
			i+1, s.ID(),
			r.CEGISStats.PInit, r.CEGISStats.PFinal, r.CEGISStats.ReductionRatio()*100, r.CEGISStats.PathsExplored, cc,
			s.Paper.CEGISPInit, s.Paper.CEGISPFinal, s.Paper.CEGISRatio, s.Paper.CEGISPhiE,
			r.CPR.PInit, r.CPR.PFinal, r.CPR.ReductionRatio()*100, r.CPR.PathsExplored, r.CPR.PathsSkipped, rank,
			s.Paper.PInit, s.Paper.PFinal, s.Paper.Ratio, s.Paper.PhiE, s.Paper.PhiS, s.Paper.Rank, note)
	}
	b.WriteString(summarizeFindings(rows))
	b.WriteString(solverSummary(rows))
	return b.String()
}

// FormatCPRTable renders Table 3/4-style rows.
func FormatCPRTable(title string, rows []SubjectResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (paper values in parentheses)\n", title)
	for i, r := range rows {
		s := r.Subject
		if r.Err != nil {
			fmt.Fprintf(&b, "%-4d %-34s %s: %v\n", i+1, s.ID(), r.Status, r.Err)
			continue
		}
		rank := "✗"
		if r.RankFound {
			rank = fmt.Sprintf("%d", r.Rank)
		}
		note := ""
		if r.Status == StatusTimeout {
			note = " [timeout]"
		}
		fmt.Fprintf(&b, "%-4d %-34s |P| %d→%d %.0f%% φE=%d φS=%d rank=%s (%s→%s %s φE=%s φS=%s rank=%s)%s\n",
			i+1, s.ID(),
			r.CPR.PInit, r.CPR.PFinal, r.CPR.ReductionRatio()*100,
			r.CPR.PathsExplored, r.CPR.PathsSkipped, rank,
			s.Paper.PInit, s.Paper.PFinal, s.Paper.Ratio, s.Paper.PhiE, s.Paper.PhiS, s.Paper.Rank, note)
	}
	b.WriteString(solverSummary(rows))
	return b.String()
}

// solverSummary aggregates the engineering-side counters of a run — wall
// time, SMT queries, verdict-cache traffic — across the table's rows.
func solverSummary(rows []SubjectResult) string {
	var wall, satTime, liaTime, valTime time.Duration
	var queries, hits, misses uint64
	var encHits, encMisses, learned, kept, deleted, cores, coreLits uint64
	var validations, valFailures, quarantines, fallbacks, rebuilds, trips uint64
	var races, mirrorWins, shared uint64
	var batchQ, batchItems, batchBisect uint64
	var shardMax int
	var steals, deaths, impVerdicts, impCores, rejImports uint64
	var hbMissed, hedges, hedgeWins, hedgeLosses, reconnects, lateJoins, degraded uint64
	var governPolls, rungSoft, rungHigh, rungCritical uint64
	var shrinks, shrinkBytes, retires, retireBytes uint64
	var spills, spilledItems, reloads, spillFails, memStopped uint64
	var frontierPeak, seenPeak int
	var frontierPeakB, seenPeakB, poolPeakB uint64
	for _, r := range rows {
		if r.NA {
			continue
		}
		if r.CPR.Shards > shardMax {
			shardMax = r.CPR.Shards
		}
		steals += r.CPR.ShardSteals
		deaths += r.CPR.ShardDeaths
		impVerdicts += r.CPR.ShardImportedVerdicts
		impCores += r.CPR.ShardImportedCores
		rejImports += r.CPR.ShardRejectedImports
		hbMissed += r.CPR.ShardHeartbeatsMissed
		hedges += r.CPR.ShardHedges
		hedgeWins += r.CPR.ShardHedgeWins
		hedgeLosses += r.CPR.ShardHedgeLosses
		reconnects += r.CPR.ShardReconnects
		lateJoins += r.CPR.ShardLateJoins
		degraded += r.CPR.ShardDegradedStarts
		wall += r.Wall
		satTime += r.CPR.SatTime
		liaTime += r.CPR.LIATime
		valTime += r.CPR.ValidateTime
		queries += r.CPR.SolverQueries
		hits += r.CPR.CacheHits
		misses += r.CPR.CacheMisses
		encHits += r.CPR.EncodeCacheHits
		encMisses += r.CPR.EncodeCacheMisses
		learned += r.CPR.ClausesLearned
		kept += r.CPR.ClausesKept
		deleted += r.CPR.ClausesDeleted
		cores += r.CPR.AssumptionCores
		coreLits += r.CPR.AssumptionCoreLits
		validations += r.CPR.Validations
		valFailures += r.CPR.ValidationFailures
		quarantines += r.CPR.Quarantines
		fallbacks += r.CPR.FallbackSolves
		rebuilds += r.CPR.RebuildRetries
		trips += r.CPR.BreakerTrips
		races += r.CPR.PortfolioRaces
		mirrorWins += r.CPR.PortfolioMirrorWins
		shared += r.CPR.PortfolioShared
		batchQ += r.CPR.BatchQueries
		batchItems += r.CPR.BatchItems
		batchBisect += r.CPR.BatchBisections
		governPolls += r.CPR.GovernPolls
		rungSoft += r.CPR.MemRungSoft
		rungHigh += r.CPR.MemRungHigh
		rungCritical += r.CPR.MemRungCritical
		shrinks += r.CPR.MemCacheShrinks
		shrinkBytes += r.CPR.MemCacheShrinkBytes
		retires += r.CPR.MemContextRetires
		retireBytes += r.CPR.MemContextRetireBytes
		spills += r.CPR.MemSpills
		spilledItems += r.CPR.MemSpilledItems
		reloads += r.CPR.MemReloads
		spillFails += r.CPR.MemSpillLoadFailures
		if r.CPR.MemStopped {
			memStopped++
		}
		if r.CPR.FrontierPeak > frontierPeak {
			frontierPeak = r.CPR.FrontierPeak
		}
		if r.CPR.SeenPeak > seenPeak {
			seenPeak = r.CPR.SeenPeak
		}
		if r.CPR.FrontierPeakBytes > frontierPeakB {
			frontierPeakB = r.CPR.FrontierPeakBytes
		}
		if r.CPR.SeenPeakBytes > seenPeakB {
			seenPeakB = r.CPR.SeenPeakBytes
		}
		if r.CPR.PoolPeakBytes > poolPeakB {
			poolPeakB = r.CPR.PoolPeakBytes
		}
	}
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	out := fmt.Sprintf("solver: %d queries, cache hit rate %.1f%% (%d hits / %d misses), wall %s\n",
		queries, rate*100, hits, misses, wall.Round(time.Millisecond))
	if satTime+liaTime+valTime > 0 {
		out += fmt.Sprintf("solver time: SAT %s, LIA %s, validation %s (rest is exploration + synthesis)\n",
			satTime.Round(time.Millisecond), liaTime.Round(time.Millisecond), valTime.Round(time.Millisecond))
	}
	if races > 0 {
		out += fmt.Sprintf("portfolio: %d races (%d non-leader wins), %d learned clauses shared\n",
			races, mirrorWins, shared)
	}
	if batchQ > 0 {
		out += fmt.Sprintf("batching: %d group queries answered %d items (%d bisections)\n",
			batchQ, batchItems, batchBisect)
	}
	if encHits+encMisses > 0 { // incremental contexts were in play
		encRate := float64(encHits) / float64(encHits+encMisses)
		meanCore := 0.0
		if cores > 0 {
			meanCore = float64(coreLits) / float64(cores)
		}
		out += fmt.Sprintf("incremental: enc-cache hit rate %.1f%% (%d/%d), clauses %d learned / %d kept / %d deleted, %d cores (mean %.1f conjuncts)\n",
			encRate*100, encHits, encHits+encMisses, learned, kept, deleted, cores, meanCore)
	}
	if validations > 0 {
		out += fmt.Sprintf("self-heal: %d validations (%d failed), %d quarantines, %d fallback solves, %d rebuilds, %d breaker trips\n",
			validations, valFailures, quarantines, fallbacks, rebuilds, trips)
	}
	if shardMax > 0 {
		out += fmt.Sprintf("shards: %d, chunks stolen %d, deaths %d, knowledge imported %d verdicts / %d cores, rejected %d\n",
			shardMax, steals, deaths, impVerdicts, impCores, rejImports)
	}
	if n := hbMissed + hedges + reconnects + degraded; n > 0 {
		out += fmt.Sprintf("resilience: heartbeats missed %d, hedges %d (%d won / %d lost), reconnects %d (%d late joins), degraded starts %d\n",
			hbMissed, hedges, hedgeWins, hedgeLosses, reconnects, lateJoins, degraded)
	}
	if governPolls > 0 { // a memory governor was in play
		out += fmt.Sprintf("memory: %d governor polls (%d soft / %d high / %d critical), cache shrinks %d (%d B freed), contexts retired %d (%d B), spills %d (%d items, %d reloads, %d failures)\n",
			governPolls, rungSoft, rungHigh, rungCritical,
			shrinks, shrinkBytes, retires, retireBytes,
			spills, spilledItems, reloads, spillFails)
		if memStopped > 0 {
			out += fmt.Sprintf("memory-stopped runs: %d (each returned its best-so-far anytime pool)\n", memStopped)
		}
	}
	if frontierPeak > 0 {
		out += fmt.Sprintf("peaks: frontier %d items (%d B), seen set %d entries (%d B), pool %d B\n",
			frontierPeak, frontierPeakB, seenPeak, seenPeakB, poolPeakB)
	}
	return out
}

func summarizeFindings(rows []SubjectResult) string {
	var better, cprTop10, cegisCorrect, ran int
	for _, r := range rows {
		if r.NA || r.Err != nil {
			continue
		}
		ran++
		if r.CPR.ReductionRatio() > r.CEGISStats.ReductionRatio()+0.01 {
			better++
		}
		if r.RankFound && r.Rank <= 10 {
			cprTop10++
		}
		if r.CEGISCorrect {
			cegisCorrect++
		}
	}
	return fmt.Sprintf("summary: %d/%d subjects with strictly better CPR reduction; CPR rank ≤ 10 on %d; CEGIS correct on %d (Findings 1 and 2)\n",
		better, ran, cprTop10, cegisCorrect)
}

// ---- Table 2 ---------------------------------------------------------------

// Table2Row aggregates per project.
type Table2Row struct {
	Project string
	Vulns   int
	// Generated / Correct counts per tool.
	GenProphet, GenAngelix, GenExtractFix, GenCPR     int
	CorrProphet, CorrAngelix, CorrExtractFix, CorrCPR int
}

// Table2 runs the three baseline tools plus CPR over the ExtractFix suite
// and aggregates generated/correct patch counts per project.
func Table2(opts RunOptions) []Table2Row {
	subjects := Catalog(SuiteExtractFix)
	byProject := map[string]*Table2Row{}
	var order []string
	solver := smt.NewSolver(opts.Baselines.SMT)
	for i, s := range subjects {
		row, ok := byProject[s.Project]
		if !ok {
			row = &Table2Row{Project: s.Project}
			byProject[s.Project] = row
			order = append(order, s.Project)
		}
		row.Vulns++
		if s.Unsupported != "" {
			continue
		}
		job, err := s.Job(opts.Budget)
		if err != nil {
			continue
		}
		dev, err := s.DevPatchTerm()
		if err != nil {
			continue
		}
		check := func(res baselines.Result) (bool, bool) {
			if !res.Generated() {
				return false, false
			}
			concrete := res.ConcreteExpr()
			p := patch.New(1, concrete, nil)
			ok, _, err := core.Covers(solver, p, dev, job.InputBounds, 0)
			return true, err == nil && ok
		}
		if res, err := baselines.Prophet(job, opts.Baselines); err == nil {
			g, c := check(res)
			if g {
				row.GenProphet++
			}
			if c {
				row.CorrProphet++
			}
		}
		if res, err := baselines.Angelix(job, opts.Baselines); err == nil {
			g, c := check(res)
			if g {
				row.GenAngelix++
			}
			if c {
				row.CorrAngelix++
			}
		}
		if res, err := baselines.ExtractFix(job, opts.Baselines); err == nil {
			g, c := check(res)
			if g {
				row.GenExtractFix++
			}
			if c {
				row.CorrExtractFix++
			}
		}
		cpr := runCPR(s, opts)
		if cpr.Err == nil && cpr.CPR.PoolFinal > 0 {
			row.GenCPR++
			if cpr.RankFound && cpr.Rank == 1 {
				row.CorrCPR++
			}
		}
		opts.progress("table2 %2d/%d %-28s done", i+1, len(subjects), s.ID())
	}
	rows := make([]Table2Row, 0, len(order))
	for _, p := range order {
		rows = append(rows, *byProject[p])
	}
	return rows
}

// FormatTable2 renders the Table 2 aggregate.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: generated / correct (top-ranked) patches per project\n")
	fmt.Fprintf(&b, "%-12s %4s | %8s %8s %11s %5s | %8s %8s %11s %5s\n",
		"Project", "#Vul", "Prophet", "Angelix", "ExtractFix", "CPR", "Prophet", "Angelix", "ExtractFix", "CPR")
	var tot Table2Row
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %4d | %8d %8d %11d %5d | %8d %8d %11d %5d\n",
			r.Project, r.Vulns,
			r.GenProphet, r.GenAngelix, r.GenExtractFix, r.GenCPR,
			r.CorrProphet, r.CorrAngelix, r.CorrExtractFix, r.CorrCPR)
		tot.Vulns += r.Vulns
		tot.GenProphet += r.GenProphet
		tot.GenAngelix += r.GenAngelix
		tot.GenExtractFix += r.GenExtractFix
		tot.GenCPR += r.GenCPR
		tot.CorrProphet += r.CorrProphet
		tot.CorrAngelix += r.CorrAngelix
		tot.CorrExtractFix += r.CorrExtractFix
		tot.CorrCPR += r.CorrCPR
	}
	fmt.Fprintf(&b, "%-12s %4d | %8d %8d %11d %5d | %8d %8d %11d %5d\n",
		"Total", tot.Vulns,
		tot.GenProphet, tot.GenAngelix, tot.GenExtractFix, tot.GenCPR,
		tot.CorrProphet, tot.CorrAngelix, tot.CorrExtractFix, tot.CorrCPR)
	b.WriteString("(paper totals: generated Prophet 17, Angelix 9, ExtractFix 24; correct 2, 0, 16)\n")
	return b.String()
}

// ---- Tables 5 and 6 ---------------------------------------------------------

// Table5Row is one parameter-range measurement.
type Table5Row struct {
	Subject   *Subject
	Range     [2]int64
	CPR       core.Stats
	Rank      int
	RankFound bool
	Err       error
}

// Table5 reruns the two ablation subjects with parameter ranges [-1,1],
// [-10,10], [-100,100].
func Table5(opts RunOptions) []Table5Row {
	var rows []Table5Row
	subjects := []*Subject{
		Find("Jasper", "CVE-2016-8691"),
		Find("Libtiff", "CVE-2016-10094"),
	}
	ranges := [][2]int64{{-1, 1}, {-10, 10}, {-100, 100}}
	for _, s := range subjects {
		for _, rg := range ranges {
			clone := *s
			clone.ParamRange = interval.New(rg[0], rg[1])
			clone.parsed = false // fresh parse cache
			row := Table5Row{Subject: s, Range: rg}
			r := runCPR(&clone, opts)
			row.CPR, row.Rank, row.RankFound, row.Err = r.CPR, r.Rank, r.RankFound, r.Err
			rows = append(rows, row)
			opts.progress("table5 %s range [%d,%d]: %s", s.ID(), rg[0], rg[1], cprCell(r))
		}
	}
	return rows
}

// FormatTable5 renders the parameter-range ablation.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5: impact of the parameter range on repair success\n")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-28s [%4d,%4d] error: %v\n", r.Subject.ID(), r.Range[0], r.Range[1], r.Err)
			continue
		}
		rank := "✗"
		if r.RankFound {
			rank = fmt.Sprintf("%d", r.Rank)
		}
		fmt.Fprintf(&b, "%-28s [%4d,%4d] |P| %d→%d %.0f%% φE=%d rank=%s\n",
			r.Subject.ID(), r.Range[0], r.Range[1],
			r.CPR.PInit, r.CPR.PFinal, r.CPR.ReductionRatio()*100, r.CPR.PathsExplored, rank)
	}
	b.WriteString("(paper: Jasper ranks 1 for every range; Libtiff needs the range to contain 4 — rank ✗ at [-1,1], 6 otherwise)\n")
	return b.String()
}

// Table6Row aggregates hit ratios per suite.
type Table6Row struct {
	Benchmark   string
	PatchLocHit float64
	BugLocHit   float64
}

// Table6 computes the average patch/bug-location hit ratios of generated
// inputs per suite from previously measured rows.
func Table6(t1, t3, t4 []SubjectResult) []Table6Row {
	agg := func(name string, rows []SubjectResult) Table6Row {
		var patch, bug, n float64
		for _, r := range rows {
			if r.NA || r.Err != nil || r.CPR.InputsGenerated == 0 {
				continue
			}
			patch += float64(r.CPR.PatchLocHits) / float64(r.CPR.InputsGenerated)
			bug += float64(r.CPR.BugLocHits) / float64(r.CPR.InputsGenerated)
			n++
		}
		if n == 0 {
			return Table6Row{Benchmark: name}
		}
		return Table6Row{Benchmark: name, PatchLocHit: patch / n * 100, BugLocHit: bug / n * 100}
	}
	return []Table6Row{
		agg("ExtractFix", t1),
		agg("ManyBugs", t3),
		agg("SV-COMP", t4),
	}
}

// FormatTable6 renders the hit-ratio table.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	b.WriteString("Table 6: average ratio of generated inputs hitting the patch and bug location\n")
	paper := map[string][2]string{
		"ExtractFix": {"74.36%", "40.23%"},
		"ManyBugs":   {"57.14%", "65.15%"},
		"SV-COMP":    {"76.33%", "79.08%"},
	}
	for _, r := range rows {
		p := paper[r.Benchmark]
		fmt.Fprintf(&b, "%-12s patch-loc %6.2f%% (paper %s)  bug-loc %6.2f%% (paper %s)\n",
			r.Benchmark, r.PatchLocHit, p[0], r.BugLocHit, p[1])
	}
	return b.String()
}

// ---- ablations --------------------------------------------------------------

// AnytimeRow is one budget point of the gradual-correctness sweep.
type AnytimeRow struct {
	Iterations int
	PFinal     int64
	Ratio      float64
}

// Anytime sweeps the iteration budget on one subject, demonstrating the
// paper's gradual-correctness viewpoint: more budget, more reduction.
func Anytime(s *Subject, budgets []int, opts RunOptions) ([]AnytimeRow, error) {
	var rows []AnytimeRow
	for _, it := range budgets {
		o := opts
		o.Budget = core.Budget{MaxIterations: it, ValidationIterations: 8}
		r := runCPR(s, o)
		if r.Err != nil {
			return nil, r.Err
		}
		rows = append(rows, AnytimeRow{Iterations: it, PFinal: r.CPR.PFinal, Ratio: r.CPR.ReductionRatio()})
		opts.progress("anytime %s budget=%d |Pf|=%d", s.ID(), it, r.CPR.PFinal)
	}
	return rows, nil
}

// PathReductionRow compares φE/φS with and without the §3.4 pruning.
type PathReductionRow struct {
	Subject *Subject
	With    core.Stats
	Without core.Stats
}

// PathReductionAblation measures the effect of disabling path reduction.
func PathReductionAblation(subjects []*Subject, opts RunOptions) []PathReductionRow {
	var rows []PathReductionRow
	for _, s := range subjects {
		if s.Unsupported != "" {
			continue
		}
		with := runCPR(s, opts)
		o := opts
		o.Core.DisablePathReduction = true
		without := runCPR(s, o)
		if with.Err != nil || without.Err != nil {
			continue
		}
		rows = append(rows, PathReductionRow{Subject: s, With: with.CPR, Without: without.CPR})
		opts.progress("pathred %s with φS=%d without φS=%d", s.ID(), with.CPR.PathsSkipped, without.CPR.PathsSkipped)
	}
	return rows
}
