package bench

import (
	"fmt"
	"strings"

	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/patch"
	"cpr/internal/smt"
)

// Figure1Step is one row of the paper's Figure 1: the patch pool after
// exploring one input partition.
type Figure1Step struct {
	// Label is the step name (I..V) and Partition the path constraint.
	Label, Partition string
	// Patches renders each surviving template with its parameter
	// constraint and concrete count.
	Patches []string
	// Total is the number of concrete patches in the pool.
	Total int64
	// Skipped marks partitions pruned by path reduction (step V).
	Skipped bool
}

// Figure1 reproduces the illustrative concolic exploration of the paper's
// Figure 1 exactly: the three abstract patches of the example (x ≥ a,
// y < b, x == a ∨ y == b) are refined against the partitions P1..P3 of the
// input space of CVE-2016-3623, and partition P4 is skipped because no
// remaining patch can exercise it. The concrete counts per step are the
// paper's 69 → 46 → 12 → 1 → 1.
func Figure1() ([]Figure1Step, error) {
	solver := smt.NewSolver(smt.Options{})
	x, y := expr.IntVar("x"), expr.IntVar("y")
	a, b := expr.IntVar("a"), expr.IntVar("b")
	out := expr.BoolVar("patch!out!0")
	bounds := map[string]interval.Interval{
		"x": interval.New(-100, 100),
		"y": interval.New(-100, 100),
	}
	sigma := expr.And(expr.Ne(x, expr.Int(0)), expr.Ne(y, expr.Int(0)))
	refiner := &patch.Refiner{Solver: solver, InputBounds: bounds}

	// The pool after the initial test x=7, y=0 (step I of the figure; the
	// constraints are "already modified by the synthesizer to pass the
	// initial test case").
	p1 := patch.New(1, expr.Ge(x, a), map[string]interval.Interval{"a": interval.New(-10, 7)})
	p2 := patch.New(2, expr.Lt(y, b), map[string]interval.Interval{"b": interval.New(1, 10)})
	p3 := patch.New(3, expr.Or(expr.Eq(x, a), expr.Eq(y, b)), nil)
	p3.Params = []string{"a", "b"}
	p3.Constraint = interval.Region{Dim: 2, Boxes: []interval.Box{
		{interval.Point(7), interval.New(-10, 10)},
		{interval.New(-10, 6), interval.Point(0)},
		{interval.New(8, 10), interval.Point(0)},
	}}
	pool := &patch.Pool{Patches: []*patch.Patch{p1, p2, p3}}

	snapshot := map[string]*expr.Term{"x": x, "y": y}
	step := func(label, partName string, phi *expr.Term) (Figure1Step, error) {
		if phi != nil {
			kept := pool.Patches[:0]
			for _, p := range pool.Patches {
				psi := p.Formula(out, snapshot)
				pi := expr.And(phi, psi, p.ConstraintTerm())
				pb := boundsPlus(bounds, p)
				sat, err := solver.IsSat(pi, pb)
				if err != nil {
					return Figure1Step{}, err
				}
				if !sat {
					kept = append(kept, p) // cannot reason: keep as-is
					continue
				}
				refiner.InputBounds = bounds
				refined, err := refiner.Refine(phi, psi, sigma, p, p.Constraint)
				if err != nil {
					return Figure1Step{}, err
				}
				if refined.IsEmpty() {
					continue // patch removed
				}
				p.Constraint = refined
				kept = append(kept, p)
			}
			pool.Patches = kept
		}
		st := Figure1Step{Label: label, Partition: partName, Total: pool.CountConcrete()}
		for _, p := range pool.Patches {
			st.Patches = append(st.Patches, fmt.Sprintf("%s (%d concrete)", p, p.CountConcrete()))
		}
		return st, nil
	}

	var steps []Figure1Step
	st, err := step("I", "initial test x=7, y=0", nil)
	if err != nil {
		return nil, err
	}
	steps = append(steps, st)

	partitions := []struct {
		label, name string
		phi         *expr.Term
	}{
		{"II", "P1: x > 3 ∧ y ≤ 5 ∧ ¬C", expr.And(expr.Gt(x, expr.Int(3)), expr.Le(y, expr.Int(5)), expr.Eq(out, expr.False()))},
		{"III", "P2: x ≤ 3 ∧ y > 5 ∧ ¬C", expr.And(expr.Le(x, expr.Int(3)), expr.Gt(y, expr.Int(5)), expr.Eq(out, expr.False()))},
		{"IV", "P3: x ≤ 3 ∧ y ≤ 5 ∧ ¬C", expr.And(expr.Le(x, expr.Int(3)), expr.Le(y, expr.Int(5)), expr.Eq(out, expr.False()))},
	}
	for _, part := range partitions {
		st, err := step(part.label, part.name, part.phi)
		if err != nil {
			return nil, err
		}
		steps = append(steps, st)
	}

	// Step V: P4 (x > 3 ∧ y > 5 ∧ C) is satisfiable on its own but no
	// remaining patch can exercise it — path reduction skips it.
	p4 := expr.And(expr.Gt(x, expr.Int(3)), expr.Gt(y, expr.Int(5)), expr.Eq(out, expr.True()))
	feasible := false
	for _, p := range pool.Patches {
		psi := p.Formula(out, snapshot)
		sat, err := solver.IsSat(expr.And(p4, psi, p.ConstraintTerm()), boundsPlus(bounds, p))
		if err != nil {
			return nil, err
		}
		if sat {
			feasible = true
			break
		}
	}
	stV := Figure1Step{
		Label:     "V",
		Partition: "P4: x > 3 ∧ y > 5 ∧ C",
		Total:     pool.CountConcrete(),
		Skipped:   !feasible,
	}
	for _, p := range pool.Patches {
		stV.Patches = append(stV.Patches, fmt.Sprintf("%s (%d concrete)", p, p.CountConcrete()))
	}
	steps = append(steps, stV)
	return steps, nil
}

func boundsPlus(bounds map[string]interval.Interval, p *patch.Patch) map[string]interval.Interval {
	out := make(map[string]interval.Interval, len(bounds)+len(p.Params))
	for k, v := range bounds {
		out[k] = v
	}
	for k, v := range p.ParamBounds() {
		out[k] = v
	}
	return out
}

// FormatFigure1 renders the step table.
func FormatFigure1(steps []Figure1Step) string {
	var b strings.Builder
	b.WriteString("Figure 1: simultaneous exploration of input space and patch space (paper counts: 69, 46, 12, 1, 1)\n")
	for _, st := range steps {
		fmt.Fprintf(&b, "step %-3s %-28s total %d concrete patches", st.Label, st.Partition, st.Total)
		if st.Skipped {
			b.WriteString("  [partition skipped: no patch can exercise it]")
		}
		b.WriteByte('\n')
		for _, p := range st.Patches {
			fmt.Fprintf(&b, "        %s\n", p)
		}
	}
	return b.String()
}
