package bench

import (
	"strings"
	"testing"

	"cpr/internal/core"
)

// fastBudget keeps table tests quick; cmd/cpr-bench runs the full budgets.
var fastBudget = core.Budget{MaxIterations: 6, ValidationIterations: 4}

func TestFigure1ReproducesPaperCounts(t *testing.T) {
	steps, err := Figure1()
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	if len(steps) != 5 {
		t.Fatalf("steps: %d", len(steps))
	}
	wantTotals := []int64{69, 46, 12, 1, 1}
	for i, w := range wantTotals {
		if steps[i].Total != w {
			t.Errorf("step %s total %d, want %d", steps[i].Label, steps[i].Total, w)
		}
	}
	if !steps[4].Skipped {
		t.Error("step V (P4) must be skipped by path reduction")
	}
	out := FormatFigure1(steps)
	if !strings.Contains(out, "step V") || !strings.Contains(out, "skipped") {
		t.Errorf("format output incomplete:\n%s", out)
	}
}

func TestTable5ParameterRanges(t *testing.T) {
	if testing.Short() {
		t.Skip("table run in -short mode")
	}
	rows := Table5(RunOptions{Budget: fastBudget})
	if len(rows) != 6 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Grouped per subject: [0..2] Jasper, [3..5] Libtiff.
	jasper := rows[:3]
	for i := 1; i < 3; i++ {
		if jasper[i].Err != nil {
			t.Fatalf("jasper range %v: %v", jasper[i].Range, jasper[i].Err)
		}
		if jasper[i].CPR.PInit <= jasper[i-1].CPR.PInit {
			t.Errorf("wider range should grow |P_init|: %d then %d",
				jasper[i-1].CPR.PInit, jasper[i].CPR.PInit)
		}
	}
	// Libtiff with range [-1, 1] cannot express the needed constant 4.
	libtiff := rows[3:]
	if libtiff[0].RankFound {
		t.Errorf("range [-1,1] should not contain the correct patch (needs 4)")
	}
	if libtiff[1].Err == nil && !libtiff[1].RankFound {
		t.Errorf("range [-10,10] should contain the correct patch")
	}
	t.Log("\n" + FormatTable5(rows))
}

func TestTable3ManyBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("table run in -short mode")
	}
	rows := Table3(RunOptions{Budget: fastBudget})
	if len(rows) != 5 {
		t.Fatalf("rows: %d", len(rows))
	}
	found := 0
	for _, r := range rows {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Subject.ID(), r.Err)
			continue
		}
		if r.RankFound {
			found++
		}
	}
	// The paper generates correct patches for all five subjects; with the
	// reduced test budget we still require most to rank.
	if found < 3 {
		t.Errorf("correct patch ranked for only %d/5 ManyBugs subjects", found)
	}
	t.Log("\n" + FormatCPRTable("Table 3: ManyBugs", rows))
}

func TestTable6Aggregation(t *testing.T) {
	rows := []SubjectResult{
		{CPR: core.Stats{InputsGenerated: 10, PatchLocHits: 8, BugLocHits: 4}},
		{CPR: core.Stats{InputsGenerated: 10, PatchLocHits: 6, BugLocHits: 6}},
	}
	agg := Table6(rows, nil, nil)
	if agg[0].Benchmark != "ExtractFix" || agg[0].PatchLocHit != 70 || agg[0].BugLocHit != 50 {
		t.Fatalf("aggregate wrong: %+v", agg[0])
	}
	if agg[1].PatchLocHit != 0 {
		t.Fatalf("empty suite should aggregate to zero: %+v", agg[1])
	}
	out := FormatTable6(agg)
	if !strings.Contains(out, "74.36%") {
		t.Errorf("paper reference missing:\n%s", out)
	}
}

func TestAnytimeMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("table run in -short mode")
	}
	s := Find("Libtiff", "CVE-2016-3623")
	rows, err := Anytime(s, []int{2, 10}, RunOptions{})
	if err != nil {
		t.Fatalf("Anytime: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[1].PFinal > rows[0].PFinal {
		t.Errorf("gradual correctness violated: %d → %d", rows[0].PFinal, rows[1].PFinal)
	}
}

func TestPathReductionAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("table run in -short mode")
	}
	rows := PathReductionAblation([]*Subject{Find("Libtiff", "CVE-2016-3623")}, RunOptions{Budget: fastBudget})
	if len(rows) != 1 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0].With.PathsSkipped == 0 {
		t.Errorf("path reduction skipped nothing: %+v", rows[0].With)
	}
}
