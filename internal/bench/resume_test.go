package bench

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cpr/internal/core"
)

func ckptRunOptions(dir string, resume bool, lines *[]string) RunOptions {
	opts := RunOptions{Budget: fastBudget}
	opts.Checkpoint = core.CheckpointOptions{Dir: dir, Resume: resume}
	if lines != nil {
		opts.Progress = func(line string) { *lines = append(*lines, line) }
	}
	return opts
}

// TestSuiteResumeSkipsCompletedSubjects: a completed suite run journals
// every row; a resumed run replays all of them from the journal without
// re-running a single subject, and the replayed rows carry the same
// measurements.
func TestSuiteResumeSkipsCompletedSubjects(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run in -short mode")
	}
	dir := t.TempDir()
	first := runSuite(SuiteManyBugs, "resume-test", ckptRunOptions(dir, false, nil))
	if len(first) == 0 {
		t.Fatal("no rows")
	}
	if _, err := os.Stat(filepath.Join(dir, "suite-resume-test.journal")); err != nil {
		t.Fatalf("suite journal missing: %v", err)
	}
	// Completed subjects must not leave engine snapshots behind.
	if subs, _ := os.ReadDir(filepath.Join(dir, "subjects")); len(subs) != 0 {
		t.Fatalf("completed run left %d subject snapshot dirs", len(subs))
	}

	var lines []string
	second := runSuite(SuiteManyBugs, "resume-test", ckptRunOptions(dir, true, &lines))
	if len(second) != len(first) {
		t.Fatalf("row counts differ: %d vs %d", len(second), len(first))
	}
	for _, line := range lines {
		if !strings.Contains(line, "resumed from journal") {
			t.Errorf("subject re-ran on resume: %s", line)
		}
	}
	for i := range first {
		if second[i].CPR != first[i].CPR {
			t.Errorf("%s: replayed stats diverged:\nreplayed: %+v\noriginal: %+v",
				first[i].Subject.ID(), second[i].CPR, first[i].CPR)
		}
		if second[i].Rank != first[i].Rank || second[i].RankFound != first[i].RankFound {
			t.Errorf("%s: replayed rank %d/%v, original %d/%v", first[i].Subject.ID(),
				second[i].Rank, second[i].RankFound, first[i].Rank, first[i].RankFound)
		}
		if second[i].Status != first[i].Status {
			t.Errorf("%s: replayed status %q, original %q", first[i].Subject.ID(),
				second[i].Status, first[i].Status)
		}
	}

	// A fresh (non-resume) run discards the old journal and re-runs.
	var freshLines []string
	runSuite(SuiteManyBugs, "resume-test", ckptRunOptions(dir, false, &freshLines))
	for _, line := range freshLines {
		if strings.Contains(line, "resumed from journal") {
			t.Errorf("fresh run replayed a stale journal row: %s", line)
		}
	}
}

// TestSuiteResumeToleratesCorruptJournal: a torn journal tail (the state
// after a mid-append SIGKILL) loses only the torn row; intact rows before
// it still replay.
func TestSuiteResumeToleratesCorruptJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run in -short mode")
	}
	dir := t.TempDir()
	runSuite(SuiteManyBugs, "torn", ckptRunOptions(dir, false, nil))
	path := filepath.Join(dir, "suite-torn.journal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	var lines []string
	rows := runSuite(SuiteManyBugs, "torn", ckptRunOptions(dir, true, &lines))
	if len(rows) != len(Catalog(SuiteManyBugs)) {
		t.Fatalf("rows: %d", len(rows))
	}
	var replayed, reran int
	for _, line := range lines {
		if strings.Contains(line, "resumed from journal") {
			replayed++
		} else {
			reran++
		}
	}
	if replayed == 0 {
		t.Error("intact journal prefix was not replayed")
	}
	if reran == 0 {
		t.Error("torn final row was silently treated as complete")
	}
}

// TestRowRecordRoundTrip: the durable row form preserves status, error
// text, and both stat blocks.
func TestRowRecordRoundTrip(t *testing.T) {
	s := Catalog(SuiteManyBugs)[0]
	in := SubjectResult{
		Subject:   s,
		Status:    StatusError,
		Err:       errors.New("boom"),
		Rank:      3,
		RankFound: true,
	}
	in.CPR.PInit = 42
	in.CEGISStats.PathsExplored = 7
	out := toRowRecord(s, in).toResult(s)
	if out.Subject != s || out.Status != StatusError || out.Err == nil || out.Err.Error() != "boom" {
		t.Fatalf("round trip lost identity fields: %+v", out)
	}
	if out.CPR != in.CPR || out.CEGISStats != in.CEGISStats || out.Rank != 3 || !out.RankFound {
		t.Fatalf("round trip lost measurements: %+v", out)
	}
}
