package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseError reports a syntax error while parsing an s-expression.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("expr: parse error at offset %d: %s", e.Pos, e.Msg)
}

// Parse parses a term in SMT-LIB-style prefix syntax, the same syntax the
// String method emits. Variable sorts are taken from vars; identifiers not
// present in vars are an error, which keeps component definitions honest.
//
//	t, err := Parse("(and (> x 3) (<= y 5))", map[string]Sort{"x": SortInt, "y": SortInt})
func Parse(src string, vars map[string]Sort) (t *Term, err error) {
	p := &sexprParser{src: src, vars: vars}
	// The simplifying constructors panic on ill-sorted operands; surface
	// those as parse errors rather than crashing the caller.
	defer func() {
		if r := recover(); r != nil {
			t, err = nil, &ParseError{p.pos, fmt.Sprint(r)}
		}
	}()
	t, err = p.parseTerm()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, &ParseError{p.pos, "trailing input"}
	}
	return t, nil
}

type sexprParser struct {
	src  string
	pos  int
	vars map[string]Sort
}

func (p *sexprParser) errf(format string, args ...interface{}) error {
	return &ParseError{p.pos, fmt.Sprintf(format, args...)}
}

func (p *sexprParser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ';' { // comment to end of line
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		p.pos++
	}
}

func isAtomChar(c byte) bool {
	return !unicode.IsSpace(rune(c)) && c != '(' && c != ')' && c != ';'
}

func (p *sexprParser) atom() (string, error) {
	start := p.pos
	for p.pos < len(p.src) && isAtomChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected atom")
	}
	return p.src[start:p.pos], nil
}

func (p *sexprParser) parseTerm() (*Term, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, p.errf("unexpected end of input")
	}
	if p.src[p.pos] != '(' {
		return p.parseAtomTerm()
	}
	p.pos++ // consume '('
	p.skipSpace()
	head, err := p.atom()
	if err != nil {
		return nil, err
	}
	var args []*Term
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated list")
		}
		if p.src[p.pos] == ')' {
			p.pos++
			break
		}
		a, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	return p.apply(head, args)
}

func (p *sexprParser) parseAtomTerm() (*Term, error) {
	a, err := p.atom()
	if err != nil {
		return nil, err
	}
	switch a {
	case "true":
		return True(), nil
	case "false":
		return False(), nil
	}
	if v, err := strconv.ParseInt(a, 10, 64); err == nil {
		return Int(v), nil
	}
	if sort, ok := p.vars[a]; ok {
		return Var(a, sort), nil
	}
	return nil, p.errf("unknown identifier %q", a)
}

func (p *sexprParser) apply(head string, args []*Term) (*Term, error) {
	need := func(n int) error {
		if len(args) != n {
			return p.errf("%s expects %d arguments, got %d", head, n, len(args))
		}
		return nil
	}
	needAtLeast := func(n int) error {
		if len(args) < n {
			return p.errf("%s expects at least %d arguments, got %d", head, n, len(args))
		}
		return nil
	}
	switch head {
	case "+":
		if err := needAtLeast(1); err != nil {
			return nil, err
		}
		return Add(args...), nil
	case "-":
		switch len(args) {
		case 1:
			return Neg(args[0]), nil
		case 2:
			return Sub(args[0], args[1]), nil
		default:
			return nil, p.errf("- expects 1 or 2 arguments, got %d", len(args))
		}
	case "*":
		if err := need(2); err != nil {
			return nil, err
		}
		return Mul(args[0], args[1]), nil
	case "div":
		if err := need(2); err != nil {
			return nil, err
		}
		return Div(args[0], args[1]), nil
	case "rem", "mod":
		if err := need(2); err != nil {
			return nil, err
		}
		return Rem(args[0], args[1]), nil
	case "=":
		if err := need(2); err != nil {
			return nil, err
		}
		return Eq(args[0], args[1]), nil
	case "distinct", "!=":
		if err := need(2); err != nil {
			return nil, err
		}
		return Ne(args[0], args[1]), nil
	case "<":
		if err := need(2); err != nil {
			return nil, err
		}
		return Lt(args[0], args[1]), nil
	case "<=":
		if err := need(2); err != nil {
			return nil, err
		}
		return Le(args[0], args[1]), nil
	case ">":
		if err := need(2); err != nil {
			return nil, err
		}
		return Gt(args[0], args[1]), nil
	case ">=":
		if err := need(2); err != nil {
			return nil, err
		}
		return Ge(args[0], args[1]), nil
	case "and":
		return And(args...), nil
	case "or":
		return Or(args...), nil
	case "not":
		if err := need(1); err != nil {
			return nil, err
		}
		return Not(args[0]), nil
	case "=>", "implies":
		if err := need(2); err != nil {
			return nil, err
		}
		return Implies(args[0], args[1]), nil
	case "ite":
		if err := need(3); err != nil {
			return nil, err
		}
		return Ite(args[0], args[1], args[2]), nil
	}
	return nil, p.errf("unknown operator %q", head)
}

// MustParse is Parse but panics on error; intended for tests and
// package-internal tables.
func MustParse(src string, vars map[string]Sort) *Term {
	t, err := Parse(src, vars)
	if err != nil {
		panic(err)
	}
	return t
}

// IntVarsFrom builds a Sort map declaring every listed name as an integer
// variable; a convenience for Parse call sites.
func IntVarsFrom(names ...string) map[string]Sort {
	m := make(map[string]Sort, len(names))
	for _, n := range names {
		m[n] = SortInt
	}
	return m
}

// FormatModel renders a model deterministically for logs and tests.
func FormatModel(m Model) string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sortStrings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%d", n, m[n])
	}
	b.WriteByte('}')
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
