package expr

import "testing"

func TestNaturalCmpDisplay(t *testing.T) {
	x, y, a := IntVar("x"), IntVar("y"), IntVar("a")
	cases := []struct {
		t    *Term
		want string
	}{
		{Simplify(Ge(x, Add(a, Int(1)))), "a <= x - 1"}, // canonical side choice
		{Simplify(Le(Add(a, Neg(x)), Int(-1))), "a <= x - 1"},
		{Simplify(Eq(Sub(a, x), Int(0))), "a == x"},
		{Simplify(Lt(Mul(Int(2), x), Add(y, Int(7)))), "2 * x <= y + 6"},
		{Simplify(Ne(x, Int(0))), "x != 0"},
		{Simplify(Le(Int(3), x)), "x >= 3"},
	}
	for _, c := range cases {
		if got := CString(c.t); got != c.want {
			t.Errorf("CString(%v) = %q, want %q", c.t, got, c.want)
		}
	}
}
