// Package expr provides immutable, hash-consed logical terms over the
// integer and boolean sorts. Terms are the lingua franca of the repair
// system: the concolic executor emits path constraints as terms, the
// synthesizer enumerates candidate patch expressions as terms, and the SMT
// solver decides satisfiability of terms.
//
// Terms are interned: two structurally equal terms are represented by the
// same pointer, so pointer comparison is structural comparison and maps
// keyed by *Term behave like maps keyed by structure.
package expr

import (
	"fmt"
	"sync"
)

// Sort is the type of a term: integer or boolean.
type Sort uint8

// The two sorts of the logic.
const (
	SortInt Sort = iota
	SortBool
)

// String returns the SMT-LIB name of the sort.
func (s Sort) String() string {
	switch s {
	case SortInt:
		return "Int"
	case SortBool:
		return "Bool"
	default:
		return fmt.Sprintf("Sort(%d)", uint8(s))
	}
}

// Op identifies the head symbol of a term.
type Op uint8

// Operators of the term language.
const (
	OpIntConst  Op = iota // integer literal (Val)
	OpBoolConst           // boolean literal (Val is 0 or 1)
	OpVar                 // variable (Name, Sort)

	OpAdd // n-ary integer addition
	OpSub // binary integer subtraction
	OpMul // binary integer multiplication
	OpDiv // binary integer division, C semantics (truncate toward zero)
	OpRem // binary integer remainder, C semantics
	OpNeg // unary integer negation

	OpEq // binary equality (both sorts)
	OpNe // binary disequality (both sorts)
	OpLt // integer less-than
	OpLe // integer less-or-equal
	OpGt // integer greater-than
	OpGe // integer greater-or-equal

	OpAnd     // n-ary conjunction
	OpOr      // n-ary disjunction
	OpNot     // negation
	OpImplies // binary implication
	OpIte     // if-then-else (condition bool; branches share a sort)

	numOps // sentinel
)

var opNames = [numOps]string{
	OpIntConst: "int", OpBoolConst: "bool", OpVar: "var",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "div", OpRem: "rem", OpNeg: "neg",
	OpEq: "=", OpNe: "distinct", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "and", OpOr: "or", OpNot: "not", OpImplies: "=>", OpIte: "ite",
}

// String returns the SMT-LIB spelling of the operator.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Term is an immutable logical term. Construct terms only through the
// package constructors; never mutate a Term after construction.
type Term struct {
	Op   Op
	Sort Sort
	Val  int64   // literal value for OpIntConst / OpBoolConst
	Name string  // variable name for OpVar
	Args []*Term // operands

	hash uint64
}

// interner deduplicates terms so that structural equality coincides with
// pointer equality. It is sharded by hash: term construction is the
// hottest shared operation in the system (every path constraint, patch
// formula, and solver rewrite goes through it), and the repair engine
// builds terms from many worker goroutines concurrently, so a single
// mutex would serialize all of them.
type interner struct {
	shards [internShards]internShard
}

type internShard struct {
	mu      sync.Mutex
	buckets map[uint64][]*Term
	// slab and argSlab are per-shard arenas for canonical terms. A miss
	// carves the Term header and its Args copy out of them instead of
	// taking two heap allocations; a hit allocates nothing at all, because
	// interning is by value: the candidate term lives on the caller's
	// stack until it is known to be new. Canonical terms are immortal (the
	// interner never evicts), so the arenas never free.
	slab    []Term
	argSlab []*Term
}

const (
	termSlabSize = 256
	argSlabSize  = 2048
)

// alloc returns a canonical *Term for the given fields from the shard's
// arenas. Caller holds the shard lock.
func (sh *internShard) alloc(op Op, sort Sort, val int64, name string, args []*Term, hash uint64) *Term {
	if len(sh.slab) == 0 {
		sh.slab = make([]Term, termSlabSize)
	}
	t := &sh.slab[0]
	sh.slab = sh.slab[1:]
	*t = Term{Op: op, Sort: sort, Val: val, Name: name, Args: sh.copyArgs(args), hash: hash}
	return t
}

// copyArgs copies an argument list into arena-backed storage. Oversized
// lists (wide conjunctions) get their own allocation rather than bloating
// the arena.
func (sh *internShard) copyArgs(args []*Term) []*Term {
	n := len(args)
	if n == 0 {
		return nil
	}
	if n > argSlabSize/4 {
		out := make([]*Term, n)
		copy(out, args)
		return out
	}
	if len(sh.argSlab) < n {
		sh.argSlab = make([]*Term, argSlabSize)
	}
	out := sh.argSlab[:n:n]
	sh.argSlab = sh.argSlab[n:]
	copy(out, args)
	return out
}

// internShards is a power of two so shard selection is a mask.
const internShards = 64

var terms = newInterner()

func newInterner() *interner {
	in := &interner{}
	for i := range in.shards {
		in.shards[i].buckets = make(map[uint64][]*Term)
	}
	return in
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashFields(op Op, sort Sort, val int64, name string, args []*Term) uint64 {
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		h ^= v
		h *= fnvPrime
	}
	mix(uint64(op))
	mix(uint64(sort))
	mix(uint64(val))
	for i := 0; i < len(name); i++ {
		mix(uint64(name[i]))
	}
	for _, a := range args {
		mix(a.hash)
	}
	return h
}

func sameFields(c *Term, op Op, sort Sort, val int64, name string, args []*Term) bool {
	if c.Op != op || c.Sort != sort || c.Val != val || c.Name != name || len(c.Args) != len(args) {
		return false
	}
	for i := range args {
		if c.Args[i] != args[i] { // args are interned: pointer equality
			return false
		}
	}
	return true
}

// mk returns the canonical term for the given fields. Interning is by
// value: the hit path (the overwhelming majority — path constraints and
// patch formulas rebuild the same terms constantly) allocates nothing,
// and a miss carves the canonical term out of the shard's arena.
func mk(op Op, sort Sort, val int64, name string, args ...*Term) *Term {
	h := hashFields(op, sort, val, name, args)
	sh := &terms.shards[h&(internShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, c := range sh.buckets[h] {
		if sameFields(c, op, sort, val, name, args) {
			return c
		}
	}
	t := sh.alloc(op, sort, val, name, args, h)
	sh.buckets[h] = append(sh.buckets[h], t)
	return t
}

// Int returns the integer literal v.
func Int(v int64) *Term { return mk(OpIntConst, SortInt, v, "") }

// Bool returns the boolean literal b.
func Bool(b bool) *Term {
	if b {
		return mk(OpBoolConst, SortBool, 1, "")
	}
	return mk(OpBoolConst, SortBool, 0, "")
}

// True and False return the boolean constants.
func True() *Term  { return Bool(true) }
func False() *Term { return Bool(false) }

// IntVar returns the integer variable named name.
func IntVar(name string) *Term { return mk(OpVar, SortInt, 0, name) }

// BoolVar returns the boolean variable named name.
func BoolVar(name string) *Term { return mk(OpVar, SortBool, 0, name) }

// Var returns a variable of the given sort.
func Var(name string, sort Sort) *Term { return mk(OpVar, sort, 0, name) }

// IsConst reports whether t is a literal of either sort.
func (t *Term) IsConst() bool { return t.Op == OpIntConst || t.Op == OpBoolConst }

// IsTrue reports whether t is the literal true.
func (t *Term) IsTrue() bool { return t.Op == OpBoolConst && t.Val == 1 }

// IsFalse reports whether t is the literal false.
func (t *Term) IsFalse() bool { return t.Op == OpBoolConst && t.Val == 0 }

// Hash returns a stable structural hash of the term.
func (t *Term) Hash() uint64 { return t.hash }

func wantSort(t *Term, s Sort, ctx string) {
	if t.Sort != s {
		panic(fmt.Sprintf("expr: %s: operand %v has sort %v, want %v", ctx, t, t.Sort, s))
	}
}

// Add returns the sum of the operands, folding constants and dropping
// zeros. Add() is 0; Add(x) is x.
func Add(args ...*Term) *Term {
	var k int64
	var buf [narySmall]*Term
	flat := buf[:0]
	for _, a := range args {
		wantSort(a, SortInt, "Add")
		switch {
		case a.Op == OpIntConst:
			k += a.Val
		case a.Op == OpAdd:
			for _, sub := range a.Args {
				if sub.Op == OpIntConst {
					k += sub.Val
				} else {
					flat = append(flat, sub)
				}
			}
		default:
			flat = append(flat, a)
		}
	}
	if k != 0 || len(flat) == 0 {
		flat = append(flat, Int(k))
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return mk(OpAdd, SortInt, 0, "", flat...)
}

// Sub returns a - b, folding constants.
func Sub(a, b *Term) *Term {
	wantSort(a, SortInt, "Sub")
	wantSort(b, SortInt, "Sub")
	if a.Op == OpIntConst && b.Op == OpIntConst {
		return Int(a.Val - b.Val)
	}
	if b.Op == OpIntConst && b.Val == 0 {
		return a
	}
	if a == b {
		return Int(0)
	}
	return mk(OpSub, SortInt, 0, "", a, b)
}

// Mul returns a * b, folding constants and simplifying by 0 and 1.
func Mul(a, b *Term) *Term {
	wantSort(a, SortInt, "Mul")
	wantSort(b, SortInt, "Mul")
	if a.Op == OpIntConst && b.Op == OpIntConst {
		return Int(a.Val * b.Val)
	}
	for _, p := range [2][2]*Term{{a, b}, {b, a}} {
		c, o := p[0], p[1]
		if c.Op == OpIntConst {
			switch c.Val {
			case 0:
				return Int(0)
			case 1:
				return o
			case -1:
				return Neg(o)
			}
		}
	}
	// Canonical operand order keeps commutative duplicates interned together.
	if b.less(a) {
		a, b = b, a
	}
	return mk(OpMul, SortInt, 0, "", a, b)
}

// Div returns a / b with C semantics (truncation toward zero). Division by
// the literal zero is left symbolic; evaluation reports it as an error.
func Div(a, b *Term) *Term {
	wantSort(a, SortInt, "Div")
	wantSort(b, SortInt, "Div")
	if a.Op == OpIntConst && b.Op == OpIntConst && b.Val != 0 {
		return Int(a.Val / b.Val)
	}
	if b.Op == OpIntConst && b.Val == 1 {
		return a
	}
	return mk(OpDiv, SortInt, 0, "", a, b)
}

// Rem returns a % b with C semantics.
func Rem(a, b *Term) *Term {
	wantSort(a, SortInt, "Rem")
	wantSort(b, SortInt, "Rem")
	if a.Op == OpIntConst && b.Op == OpIntConst && b.Val != 0 {
		return Int(a.Val % b.Val)
	}
	if b.Op == OpIntConst && (b.Val == 1 || b.Val == -1) {
		return Int(0)
	}
	return mk(OpRem, SortInt, 0, "", a, b)
}

// Neg returns -a.
func Neg(a *Term) *Term {
	wantSort(a, SortInt, "Neg")
	if a.Op == OpIntConst {
		return Int(-a.Val)
	}
	if a.Op == OpNeg {
		return a.Args[0]
	}
	return mk(OpNeg, SortInt, 0, "", a)
}

func cmpConst(op Op, a, b int64) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	}
	panic("expr: cmpConst: not a comparison op")
}

func compare(op Op, a, b *Term) *Term {
	if a.Sort != b.Sort {
		panic(fmt.Sprintf("expr: %v: mixed sorts %v and %v", op, a.Sort, b.Sort))
	}
	if op != OpEq && op != OpNe {
		wantSort(a, SortInt, op.String())
	}
	if a.IsConst() && b.IsConst() {
		return Bool(cmpConst(op, a.Val, b.Val))
	}
	if a == b {
		switch op {
		case OpEq, OpLe, OpGe:
			return True()
		case OpNe, OpLt, OpGt:
			return False()
		}
	}
	// Canonicalize symmetric comparisons.
	if (op == OpEq || op == OpNe) && b.less(a) {
		a, b = b, a
	}
	return mk(op, SortBool, 0, "", a, b)
}

// Eq returns a = b. Operands must share a sort.
func Eq(a, b *Term) *Term { return compare(OpEq, a, b) }

// Ne returns a ≠ b. Operands must share a sort.
func Ne(a, b *Term) *Term { return compare(OpNe, a, b) }

// Lt returns a < b over integers.
func Lt(a, b *Term) *Term { return compare(OpLt, a, b) }

// Le returns a ≤ b over integers.
func Le(a, b *Term) *Term { return compare(OpLe, a, b) }

// Gt returns a > b over integers.
func Gt(a, b *Term) *Term { return compare(OpGt, a, b) }

// Ge returns a ≥ b over integers.
func Ge(a, b *Term) *Term { return compare(OpGe, a, b) }

// naryAcc accumulates the flattened, deduplicated operand list of an
// n-ary And/Or. Small lists — the overwhelming majority — live in the
// caller's stack buffer and dedup by linear scan, so building a small
// conjunction that already exists allocates nothing; past narySmall
// operands the dedup upgrades to a map.
type naryAcc struct {
	flat []*Term
	seen map[*Term]bool // nil until flat outgrows linear-scan dedup
}

const narySmall = 16

func (acc *naryAcc) add(a *Term) {
	if acc.seen != nil {
		if !acc.seen[a] {
			acc.seen[a] = true
			acc.flat = append(acc.flat, a)
		}
		return
	}
	for _, f := range acc.flat {
		if f == a {
			return
		}
	}
	if len(acc.flat) >= narySmall {
		acc.seen = make(map[*Term]bool, 4*narySmall)
		for _, f := range acc.flat {
			acc.seen[f] = true
		}
		acc.seen[a] = true
	}
	acc.flat = append(acc.flat, a)
}

// And returns the conjunction of the operands, flattening nested
// conjunctions, dropping trues, and short-circuiting on false. And() is
// true. Flattening is one level deep by constructor invariant: the args
// of an interned OpAnd term are never themselves OpAnd (this function
// flattened them), which keeps the loop iterative so the stack buffer
// stays on the stack.
func And(args ...*Term) *Term {
	var buf [narySmall]*Term
	acc := naryAcc{flat: buf[:0]}
	for _, a := range args {
		wantSort(a, SortBool, "And")
		switch {
		case a.IsTrue():
		case a.IsFalse():
			return False()
		case a.Op == OpAnd:
			for _, sub := range a.Args {
				acc.add(sub)
			}
		default:
			acc.add(a)
		}
	}
	switch len(acc.flat) {
	case 0:
		return True()
	case 1:
		return acc.flat[0]
	}
	return mk(OpAnd, SortBool, 0, "", acc.flat...)
}

// Or returns the disjunction of the operands, flattening nested
// disjunctions, dropping falses, and short-circuiting on true. Or() is
// false. Like And, flattening is one level deep by constructor invariant.
func Or(args ...*Term) *Term {
	var buf [narySmall]*Term
	acc := naryAcc{flat: buf[:0]}
	for _, a := range args {
		wantSort(a, SortBool, "Or")
		switch {
		case a.IsFalse():
		case a.IsTrue():
			return True()
		case a.Op == OpOr:
			for _, sub := range a.Args {
				acc.add(sub)
			}
		default:
			acc.add(a)
		}
	}
	switch len(acc.flat) {
	case 0:
		return False()
	case 1:
		return acc.flat[0]
	}
	return mk(OpOr, SortBool, 0, "", acc.flat...)
}

// Not returns the negation of a, eliminating double negation and flipping
// comparisons.
func Not(a *Term) *Term {
	wantSort(a, SortBool, "Not")
	switch a.Op {
	case OpBoolConst:
		return Bool(a.Val == 0)
	case OpNot:
		return a.Args[0]
	case OpEq:
		return mk(OpNe, SortBool, 0, "", a.Args...)
	case OpNe:
		return mk(OpEq, SortBool, 0, "", a.Args...)
	case OpLt:
		return mk(OpGe, SortBool, 0, "", a.Args...)
	case OpLe:
		return mk(OpGt, SortBool, 0, "", a.Args...)
	case OpGt:
		return mk(OpLe, SortBool, 0, "", a.Args...)
	case OpGe:
		return mk(OpLt, SortBool, 0, "", a.Args...)
	}
	return mk(OpNot, SortBool, 0, "", a)
}

// Implies returns a ⇒ b.
func Implies(a, b *Term) *Term {
	wantSort(a, SortBool, "Implies")
	wantSort(b, SortBool, "Implies")
	switch {
	case a.IsFalse() || b.IsTrue():
		return True()
	case a.IsTrue():
		return b
	case b.IsFalse():
		return Not(a)
	}
	return mk(OpImplies, SortBool, 0, "", a, b)
}

// Ite returns if cond then a else b. Branches must share a sort.
func Ite(cond, a, b *Term) *Term {
	wantSort(cond, SortBool, "Ite")
	if a.Sort != b.Sort {
		panic("expr: Ite: branches have different sorts")
	}
	switch {
	case cond.IsTrue():
		return a
	case cond.IsFalse():
		return b
	case a == b:
		return a
	}
	if a.Sort == SortBool && a.IsTrue() && b.IsFalse() {
		return cond
	}
	if a.Sort == SortBool && a.IsFalse() && b.IsTrue() {
		return Not(cond)
	}
	return mk(OpIte, a.Sort, 0, "", cond, a, b)
}

// less imposes an arbitrary but deterministic total order on interned
// terms, used to canonicalize commutative operands.
func (t *Term) less(u *Term) bool {
	if t == u {
		return false
	}
	if t.Op != u.Op {
		return t.Op < u.Op
	}
	if t.Val != u.Val {
		return t.Val < u.Val
	}
	if t.Name != u.Name {
		return t.Name < u.Name
	}
	if len(t.Args) != len(u.Args) {
		return len(t.Args) < len(u.Args)
	}
	for i := range t.Args {
		if t.Args[i] != u.Args[i] {
			return t.Args[i].less(u.Args[i])
		}
	}
	return false
}

// Size returns the number of nodes in the term DAG counted as a tree.
func (t *Term) Size() int {
	n := 1
	for _, a := range t.Args {
		n += a.Size()
	}
	return n
}
