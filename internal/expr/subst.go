package expr

import "sort"

// Subst replaces every variable that appears as a key of sub with its
// mapped term, rebuilding (and thereby re-simplifying) the result
// bottom-up. Variables absent from sub are left untouched.
func Subst(t *Term, sub map[string]*Term) *Term {
	if len(sub) == 0 {
		return t
	}
	cache := make(map[*Term]*Term)
	return substCached(t, sub, cache)
}

func substCached(t *Term, sub map[string]*Term, cache map[*Term]*Term) *Term {
	if r, ok := cache[t]; ok {
		return r
	}
	var r *Term
	switch t.Op {
	case OpIntConst, OpBoolConst:
		r = t
	case OpVar:
		if repl, ok := sub[t.Name]; ok {
			if repl.Sort != t.Sort {
				panic("expr: Subst: sort mismatch for variable " + t.Name)
			}
			r = repl
		} else {
			r = t
		}
	default:
		args := make([]*Term, len(t.Args))
		changed := false
		for i, a := range t.Args {
			args[i] = substCached(a, sub, cache)
			if args[i] != a {
				changed = true
			}
		}
		if !changed {
			r = t
		} else {
			r = Rebuild(t.Op, args)
		}
	}
	cache[t] = r
	return r
}

// Rebuild reconstructs a term with the given operator and arguments using
// the simplifying constructors.
func Rebuild(op Op, args []*Term) *Term {
	switch op {
	case OpAdd:
		return Add(args...)
	case OpSub:
		return Sub(args[0], args[1])
	case OpMul:
		return Mul(args[0], args[1])
	case OpDiv:
		return Div(args[0], args[1])
	case OpRem:
		return Rem(args[0], args[1])
	case OpNeg:
		return Neg(args[0])
	case OpEq:
		return Eq(args[0], args[1])
	case OpNe:
		return Ne(args[0], args[1])
	case OpLt:
		return Lt(args[0], args[1])
	case OpLe:
		return Le(args[0], args[1])
	case OpGt:
		return Gt(args[0], args[1])
	case OpGe:
		return Ge(args[0], args[1])
	case OpAnd:
		return And(args...)
	case OpOr:
		return Or(args...)
	case OpNot:
		return Not(args[0])
	case OpImplies:
		return Implies(args[0], args[1])
	case OpIte:
		return Ite(args[0], args[1], args[2])
	}
	panic("expr: Rebuild: cannot rebuild operator " + op.String())
}

// Vars returns the free variables of t, sorted by name.
func Vars(t *Term) []*Term {
	set := make(map[*Term]bool)
	collectVars(t, set)
	out := make([]*Term, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// VarNames returns the names of the free variables of t, sorted.
func VarNames(t *Term) []string {
	vs := Vars(t)
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	return names
}

func collectVars(t *Term, set map[*Term]bool) {
	if t.Op == OpVar {
		set[t] = true
		return
	}
	for _, a := range t.Args {
		collectVars(a, set)
	}
}

// ContainsVar reports whether variable name occurs free in t.
func ContainsVar(t *Term, name string) bool {
	if t.Op == OpVar {
		return t.Name == name
	}
	for _, a := range t.Args {
		if ContainsVar(a, name) {
			return true
		}
	}
	return false
}

// ContainsOp reports whether any subterm of t has operator op.
func ContainsOp(t *Term, op Op) bool {
	if t.Op == op {
		return true
	}
	for _, a := range t.Args {
		if ContainsOp(a, op) {
			return true
		}
	}
	return false
}

// Rename returns t with every variable renamed through f. Variables for
// which f returns the empty string keep their name.
func Rename(t *Term, f func(string) string) *Term {
	sub := make(map[string]*Term)
	for _, v := range Vars(t) {
		if n := f(v.Name); n != "" && n != v.Name {
			sub[v.Name] = Var(n, v.Sort)
		}
	}
	return Subst(t, sub)
}
