package expr

import "sort"

// Compare imposes the package's deterministic total order on terms,
// returning -1, 0, or +1.
func (t *Term) Compare(u *Term) int {
	switch {
	case t == u:
		return 0
	case t.less(u):
		return -1
	default:
		return 1
	}
}

// LinearSum is a linear combination of atoms: Const + Σ Coeff[a]·a. Atoms
// are integer terms that linearization does not look inside (variables,
// products of variables, divisions, ites, …).
type LinearSum struct {
	Coeff map[*Term]int64
	Const int64
}

// Linearize decomposes an integer term into a linear sum over atoms,
// distributing + - and multiplication by constants.
func Linearize(t *Term) LinearSum {
	s := LinearSum{Coeff: make(map[*Term]int64)}
	linearizeInto(t, 1, &s)
	for a, c := range s.Coeff {
		if c == 0 {
			delete(s.Coeff, a)
		}
	}
	return s
}

func linearizeInto(t *Term, mult int64, s *LinearSum) {
	switch t.Op {
	case OpIntConst:
		s.Const += mult * t.Val
	case OpAdd:
		for _, a := range t.Args {
			linearizeInto(a, mult, s)
		}
	case OpSub:
		linearizeInto(t.Args[0], mult, s)
		linearizeInto(t.Args[1], -mult, s)
	case OpNeg:
		linearizeInto(t.Args[0], -mult, s)
	case OpMul:
		a, b := t.Args[0], t.Args[1]
		switch {
		case a.Op == OpIntConst:
			linearizeInto(b, mult*a.Val, s)
		case b.Op == OpIntConst:
			linearizeInto(a, mult*b.Val, s)
		default:
			s.Coeff[t] += mult
		}
	default:
		s.Coeff[t] += mult
	}
}

// SortedAtoms returns the atoms of the sum in the deterministic term order.
func (s LinearSum) SortedAtoms() []*Term {
	atoms := make([]*Term, 0, len(s.Coeff))
	for a := range s.Coeff {
		atoms = append(atoms, a)
	}
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].less(atoms[j]) })
	return atoms
}

// Term rebuilds the sum as a term.
func (s LinearSum) Term() *Term {
	parts := make([]*Term, 0, len(s.Coeff)+1)
	for _, a := range s.SortedAtoms() {
		parts = append(parts, Mul(Int(s.Coeff[a]), a))
	}
	if s.Const != 0 || len(parts) == 0 {
		parts = append(parts, Int(s.Const))
	}
	return Add(parts...)
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// Simplify rewrites t bottom-up through the simplifying constructors and
// normalizes integer comparisons to a canonical linear form:
//
//	Σ cᵢ·aᵢ ≤ k        (for < ≤ > ≥, gcd-reduced, constant on the right)
//	Σ cᵢ·aᵢ = k / ≠ k  (sign-normalized, gcd-reduced)
//
// Structurally distinct but semantically identical atoms such as x+1 > y
// and x >= y therefore intern to the same term.
func Simplify(t *Term) *Term {
	cache := make(map[*Term]*Term)
	return simplifyCached(t, cache)
}

func simplifyCached(t *Term, cache map[*Term]*Term) *Term {
	if r, ok := cache[t]; ok {
		return r
	}
	var r *Term
	switch t.Op {
	case OpIntConst, OpBoolConst, OpVar:
		r = t
	default:
		args := make([]*Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = simplifyCached(a, cache)
		}
		r = Rebuild(t.Op, args)
		if isIntCmp(r) {
			r = normalizeCmp(r)
		}
	}
	cache[t] = r
	return r
}

func isIntCmp(t *Term) bool {
	switch t.Op {
	case OpLt, OpLe, OpGt, OpGe:
		return true
	case OpEq, OpNe:
		return t.Args[0].Sort == SortInt
	}
	return false
}

// normalizeCmp canonicalizes an integer comparison. See Simplify.
func normalizeCmp(t *Term) *Term {
	l := Linearize(t.Args[0])
	r := Linearize(t.Args[1])
	// diff := lhs - rhs
	diff := LinearSum{Coeff: make(map[*Term]int64), Const: l.Const - r.Const}
	for a, c := range l.Coeff {
		diff.Coeff[a] += c
	}
	for a, c := range r.Coeff {
		diff.Coeff[a] -= c
	}
	for a, c := range diff.Coeff {
		if c == 0 {
			delete(diff.Coeff, a)
		}
	}
	op := t.Op
	// Reduce > and ≥ to < and ≤ by negating the sum.
	if op == OpGt || op == OpGe {
		for a := range diff.Coeff {
			diff.Coeff[a] = -diff.Coeff[a]
		}
		diff.Const = -diff.Const
		if op == OpGt {
			op = OpLt
		} else {
			op = OpLe
		}
	}
	// Reduce < to ≤ over the integers: s < 0 ⇔ s + 1 ≤ 0.
	if op == OpLt {
		diff.Const++
		op = OpLe
	}
	if len(diff.Coeff) == 0 {
		switch op {
		case OpLe:
			return Bool(diff.Const <= 0)
		case OpEq:
			return Bool(diff.Const == 0)
		case OpNe:
			return Bool(diff.Const != 0)
		}
	}
	// gcd reduction.
	var g int64
	for _, c := range diff.Coeff {
		g = gcd64(g, c)
	}
	k := -diff.Const // move constant to the right: Σ c·a ⋈ k
	if g > 1 {
		switch op {
		case OpLe:
			for a := range diff.Coeff {
				diff.Coeff[a] /= g
			}
			k = floorDiv(k, g)
		case OpEq:
			if k%g != 0 {
				return False()
			}
			for a := range diff.Coeff {
				diff.Coeff[a] /= g
			}
			k /= g
		case OpNe:
			if k%g != 0 {
				return True()
			}
			for a := range diff.Coeff {
				diff.Coeff[a] /= g
			}
			k /= g
		}
	}
	// Sign normalization for = and ≠: leading coefficient positive.
	if op == OpEq || op == OpNe {
		atoms := diff.SortedAtoms()
		if len(atoms) > 0 && diff.Coeff[atoms[0]] < 0 {
			for a := range diff.Coeff {
				diff.Coeff[a] = -diff.Coeff[a]
			}
			k = -k
		}
	}
	diff.Const = 0
	lhs := diff.Term()
	rhs := Int(k)
	switch op {
	case OpLe:
		return mk(OpLe, SortBool, 0, "", lhs, rhs)
	case OpEq:
		return mk(OpEq, SortBool, 0, "", lhs, rhs)
	case OpNe:
		return mk(OpNe, SortBool, 0, "", lhs, rhs)
	}
	panic("expr: normalizeCmp: unreachable")
}
