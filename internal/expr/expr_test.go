package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInterning(t *testing.T) {
	a := Add(IntVar("x"), Int(1))
	b := Add(IntVar("x"), Int(1))
	if a != b {
		t.Fatalf("structurally equal terms not interned: %p vs %p", a, b)
	}
	if a == Add(IntVar("x"), Int(2)) {
		t.Fatalf("distinct terms interned together")
	}
}

func TestConstructorFolding(t *testing.T) {
	x := IntVar("x")
	cases := []struct {
		got  *Term
		want *Term
	}{
		{Add(Int(2), Int(3)), Int(5)},
		{Add(x, Int(0)), x},
		{Add(), Int(0)},
		{Sub(Int(7), Int(3)), Int(4)},
		{Sub(x, Int(0)), x},
		{Sub(x, x), Int(0)},
		{Mul(Int(2), Int(3)), Int(6)},
		{Mul(x, Int(0)), Int(0)},
		{Mul(x, Int(1)), x},
		{Mul(x, Int(-1)), Neg(x)},
		{Div(Int(7), Int(2)), Int(3)},
		{Div(Int(-7), Int(2)), Int(-3)}, // C truncation
		{Div(x, Int(1)), x},
		{Rem(Int(-7), Int(2)), Int(-1)}, // C remainder
		{Rem(x, Int(1)), Int(0)},
		{Neg(Neg(x)), x},
		{Eq(Int(1), Int(1)), True()},
		{Ne(Int(1), Int(1)), False()},
		{Lt(Int(1), Int(2)), True()},
		{Le(x, x), True()},
		{Lt(x, x), False()},
		{And(), True()},
		{And(True(), True()), True()},
		{And(BoolVar("p"), False()), False()},
		{And(BoolVar("p"), True()), BoolVar("p")},
		{Or(), False()},
		{Or(BoolVar("p"), True()), True()},
		{Or(BoolVar("p"), False()), BoolVar("p")},
		{Not(Not(BoolVar("p"))), BoolVar("p")},
		{Not(True()), False()},
		{Not(Lt(x, Int(3))), Ge(x, Int(3))},
		{Implies(False(), BoolVar("p")), True()},
		{Implies(True(), BoolVar("p")), BoolVar("p")},
		{Ite(True(), Int(1), Int(2)), Int(1)},
		{Ite(False(), Int(1), Int(2)), Int(2)},
		{Ite(BoolVar("p"), x, x), x},
		{Ite(BoolVar("p"), True(), False()), BoolVar("p")},
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Errorf("case %d: got %v, want %v", i, c.got, c.want)
		}
	}
}

func TestAndOrFlattenDedup(t *testing.T) {
	p, q := BoolVar("p"), BoolVar("q")
	got := And(p, And(q, p))
	want := And(p, q)
	if got != want {
		t.Fatalf("And flatten/dedup: got %v, want %v", got, want)
	}
	got = Or(p, Or(p, q), q)
	want = Or(p, q)
	if got != want {
		t.Fatalf("Or flatten/dedup: got %v, want %v", got, want)
	}
}

func TestEval(t *testing.T) {
	x, y := IntVar("x"), IntVar("y")
	m := Model{"x": 7, "y": 0}
	f := And(Gt(x, Int(3)), Le(y, Int(5)))
	v, err := Eval(f, m)
	if err != nil || v != 1 {
		t.Fatalf("Eval(%v) = %d, %v; want 1, nil", f, v, err)
	}
	if _, err := Eval(Div(x, y), m); err == nil {
		t.Fatal("expected division-by-zero error")
	}
	if _, err := Eval(IntVar("zzz"), m); err == nil {
		t.Fatal("expected unbound-variable error")
	}
	// Short-circuit: And with false guard must not evaluate the division.
	v, err = Eval(And(False(), Eq(Div(x, y), Int(0))), Model{"x": 1, "y": 0})
	if err != nil || v != 0 {
		t.Fatalf("short-circuit And: got %d, %v", v, err)
	}
}

func TestSubst(t *testing.T) {
	x, y := IntVar("x"), IntVar("y")
	f := Add(x, Mul(Int(2), y))
	g := Subst(f, map[string]*Term{"x": Int(3), "y": Int(4)})
	if g != Int(11) {
		t.Fatalf("Subst folded to %v, want 11", g)
	}
	h := Subst(f, map[string]*Term{"x": y})
	if !ContainsVar(h, "y") || ContainsVar(h, "x") {
		t.Fatalf("Subst rename failed: %v", h)
	}
}

func TestVars(t *testing.T) {
	f := And(Gt(IntVar("b"), Int(0)), Eq(IntVar("a"), IntVar("c")))
	names := VarNames(f)
	want := []string{"a", "b", "c"}
	if len(names) != 3 {
		t.Fatalf("VarNames = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("VarNames = %v, want %v", names, want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	vars := map[string]Sort{"x": SortInt, "y": SortInt, "p": SortBool}
	cases := []string{
		"(and (> x 3) (<= y 5))",
		"(or (= x y) (distinct x 0))",
		"(+ x (* 2 y) (- 7))",
		"(ite p x (- x))",
		"(=> p (< x 10))",
		"(div x 3)",
		"(rem x 3)",
	}
	for _, src := range cases {
		tm, err := Parse(src, vars)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		back, err := Parse(tm.String(), vars)
		if err != nil {
			t.Fatalf("re-Parse(%q from %q): %v", tm.String(), src, err)
		}
		if back != tm {
			t.Errorf("round trip %q -> %v -> %v", src, tm, back)
		}
	}
}

func TestParseErrors(t *testing.T) {
	vars := map[string]Sort{"x": SortInt}
	for _, src := range []string{"", "(", "(and", "(+ x q)", "(foo 1 2)", "x y", "(not x)"} {
		if _, err := Parse(src, vars); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestCString(t *testing.T) {
	x, y, a, b := IntVar("x"), IntVar("y"), IntVar("a"), IntVar("b")
	cases := []struct {
		t    *Term
		want string
	}{
		{Or(Eq(x, a), Eq(y, b)), "a == x || b == y"}, // Eq canonicalizes operand order
		{Ge(x, a), "x >= a"},
		{And(Gt(x, Int(3)), Le(y, Int(5))), "x > 3 && y <= 5"},
		{Mul(Add(x, Int(1)), y), "y * (x + 1)"}, // Mul canonicalizes operand order
		{Sub(x, Sub(y, Int(1))), "x - (y - 1)"},
		{Not(Gt(x, Int(0))), "x <= 0"}, // Not flips the comparison
		{Not(BoolVar("p")), "!p"},
	}
	for _, c := range cases {
		if got := CString(c.t); got != c.want {
			t.Errorf("CString(%v) = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestSimplifyNormalizesEquivalentAtoms(t *testing.T) {
	x, y := IntVar("x"), IntVar("y")
	a := Simplify(Gt(Add(x, Int(1)), y)) // x+1 > y  ⇔  y - x ≤ 0
	b := Simplify(Ge(x, y))              // x ≥ y    ⇔  y - x ≤ 0
	if a != b {
		t.Fatalf("equivalent atoms differ after Simplify: %v vs %v", a, b)
	}
	c := Simplify(Lt(Mul(Int(2), x), Int(7))) // 2x < 7 ⇔ 2x ≤ 6 ⇔ x ≤ 3
	d := Simplify(Le(x, Int(3)))
	if c != d {
		t.Fatalf("gcd tightening failed: %v vs %v", c, d)
	}
	if got := Simplify(Eq(Mul(Int(2), x), Int(5))); got != False() {
		t.Fatalf("2x = 5 should simplify to false, got %v", got)
	}
	if got := Simplify(Ne(Mul(Int(2), x), Int(5))); got != True() {
		t.Fatalf("2x ≠ 5 should simplify to true, got %v", got)
	}
}

// randTerm builds a random well-sorted term over x, y, p using only
// total operators (no div/rem), so evaluation cannot fail.
func randTerm(r *rand.Rand, depth int, sort Sort) *Term {
	if depth == 0 {
		if sort == SortInt {
			switch r.Intn(3) {
			case 0:
				return IntVar("x")
			case 1:
				return IntVar("y")
			default:
				return Int(int64(r.Intn(21) - 10))
			}
		}
		switch r.Intn(3) {
		case 0:
			return BoolVar("p")
		case 1:
			return True()
		default:
			return False()
		}
	}
	if sort == SortInt {
		switch r.Intn(5) {
		case 0:
			return Add(randTerm(r, depth-1, SortInt), randTerm(r, depth-1, SortInt))
		case 1:
			return Sub(randTerm(r, depth-1, SortInt), randTerm(r, depth-1, SortInt))
		case 2:
			return Mul(randTerm(r, depth-1, SortInt), randTerm(r, depth-1, SortInt))
		case 3:
			return Neg(randTerm(r, depth-1, SortInt))
		default:
			return Ite(randTerm(r, depth-1, SortBool), randTerm(r, depth-1, SortInt), randTerm(r, depth-1, SortInt))
		}
	}
	switch r.Intn(7) {
	case 0:
		return And(randTerm(r, depth-1, SortBool), randTerm(r, depth-1, SortBool))
	case 1:
		return Or(randTerm(r, depth-1, SortBool), randTerm(r, depth-1, SortBool))
	case 2:
		return Not(randTerm(r, depth-1, SortBool))
	case 3:
		return Lt(randTerm(r, depth-1, SortInt), randTerm(r, depth-1, SortInt))
	case 4:
		return Le(randTerm(r, depth-1, SortInt), randTerm(r, depth-1, SortInt))
	case 5:
		return Eq(randTerm(r, depth-1, SortInt), randTerm(r, depth-1, SortInt))
	default:
		return Implies(randTerm(r, depth-1, SortBool), randTerm(r, depth-1, SortBool))
	}
}

// TestSimplifyPreservesSemantics: Simplify(t) evaluates identically to t.
func TestSimplifyPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(x, y int8, p bool) bool {
		tm := randTerm(r, 3, SortBool)
		m := Model{"x": int64(x), "y": int64(y), "p": b2i(p)}
		v1, err1 := Eval(tm, m)
		v2, err2 := Eval(Simplify(tm), m)
		if err1 != nil || err2 != nil {
			return false
		}
		return v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSubstThenEvalEqualsEvalExtended: substituting constants then
// evaluating equals evaluating with the bindings in the model.
func TestSubstThenEvalEqualsEvalExtended(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(x, y int8, p bool) bool {
		tm := randTerm(r, 3, SortBool)
		m := Model{"x": int64(x), "y": int64(y), "p": b2i(p)}
		v1, err1 := Eval(tm, m)
		sub := map[string]*Term{"x": Int(int64(x)), "y": Int(int64(y)), "p": Bool(p)}
		v2, err2 := Eval(Subst(tm, sub), Model{})
		if err1 != nil || err2 != nil {
			return false
		}
		return v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParsePrintRandom: printing then parsing returns the same interned term.
func TestParsePrintRandom(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	vars := map[string]Sort{"x": SortInt, "y": SortInt, "p": SortBool}
	for i := 0; i < 300; i++ {
		tm := randTerm(r, 4, SortBool)
		back, err := Parse(tm.String(), vars)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tm.String(), err)
		}
		if back != tm {
			t.Fatalf("print/parse: %v != %v", tm, back)
		}
	}
}

func TestLinearize(t *testing.T) {
	x, y := IntVar("x"), IntVar("y")
	// 2x + 3(y - x) + 4  =  -x + 3y + 4... wait: 2x + 3y - 3x + 4 = -x + 3y + 4
	s := Linearize(Add(Mul(Int(2), x), Mul(Int(3), Sub(y, x)), Int(4)))
	if s.Const != 4 || s.Coeff[x] != -1 || s.Coeff[y] != 3 {
		t.Fatalf("Linearize: got coeffs %v const %d", s.Coeff, s.Const)
	}
	// Nonlinear product stays an atom.
	s = Linearize(Mul(x, y))
	if len(s.Coeff) != 1 {
		t.Fatalf("Linearize nonlinear: %v", s.Coeff)
	}
}

func TestTermSizeAndCompare(t *testing.T) {
	x := IntVar("x")
	f := And(Gt(x, Int(0)), Lt(x, Int(10)))
	if f.Size() < 5 {
		t.Fatalf("Size too small: %d", f.Size())
	}
	if x.Compare(x) != 0 {
		t.Fatal("Compare self != 0")
	}
	y := IntVar("y")
	if x.Compare(y)+y.Compare(x) != 0 {
		t.Fatal("Compare not antisymmetric")
	}
}

// TestInternHitPathAllocFree: rebuilding an existing term must not
// allocate — the candidate stays on the caller's stack and interning is
// by value. This is the hot path of every path-constraint rebuild.
func TestInternHitPathAllocFree(t *testing.T) {
	x := IntVar("x")
	Ge(x, Int(41)) // populate
	allocs := testing.AllocsPerRun(100, func() {
		Ge(x, Int(41))
	})
	if allocs != 0 {
		t.Errorf("intern hit path allocates %.1f times per term", allocs)
	}
}

// BenchmarkIntern measures term construction, the hottest shared
// operation in the system, on the hit path (b.N rebuilds of one formula)
// and the miss path (fresh constants each iteration).
func BenchmarkIntern(b *testing.B) {
	x, y := IntVar("x"), IntVar("y")
	b.Run("hit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			And(Ge(x, Int(0)), Lt(Add(x, y), Int(50)))
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Ge(x, Int(int64(i)+1000000))
		}
	})
}
