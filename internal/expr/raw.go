package expr

// RawTerm interns a term from its exact components — operator, sort,
// literal value, variable name, and already-interned arguments — without
// running the canonicalizing constructors.
//
// It exists for one caller: the snapshot decoder in internal/journal,
// which replays node tables of terms that were canonical when encoded.
// Re-interning the identical structure returns the identical pointer, so a
// decoded term is pointer-equal to the live term it was encoded from. Any
// other construction path must go through the package constructors; a
// RawTerm built from components that never came out of a canonical term
// would silently break the invariant that interned pointers are canonical
// forms.
func RawTerm(op Op, sort Sort, val int64, name string, args []*Term) *Term {
	return mk(op, sort, val, name, args...)
}

// ValidOp reports whether op is one of the defined term operators; the
// snapshot decoder rejects node tables with out-of-range operators before
// interning anything.
func ValidOp(op Op) bool { return op < numOps }
