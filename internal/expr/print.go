package expr

import (
	"fmt"
	"strconv"
	"strings"
)

// String renders the term in SMT-LIB-style prefix notation, e.g.
// (and (> x 3) (<= y 5)).
func (t *Term) String() string {
	var b strings.Builder
	writeSExpr(&b, t)
	return b.String()
}

func writeSExpr(b *strings.Builder, t *Term) {
	switch t.Op {
	case OpIntConst:
		if t.Val < 0 {
			fmt.Fprintf(b, "(- %d)", -t.Val)
		} else {
			b.WriteString(strconv.FormatInt(t.Val, 10))
		}
	case OpBoolConst:
		if t.Val == 1 {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case OpVar:
		b.WriteString(t.Name)
	case OpNeg:
		b.WriteString("(- ")
		writeSExpr(b, t.Args[0])
		b.WriteByte(')')
	default:
		b.WriteByte('(')
		b.WriteString(t.Op.String())
		for _, a := range t.Args {
			b.WriteByte(' ')
			writeSExpr(b, a)
		}
		b.WriteByte(')')
	}
}

// precedence levels for the C-style printer, higher binds tighter.
func cPrec(op Op) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpImplies:
		return 1 // printed as a disjunction-level construct
	case OpEq, OpNe:
		return 3
	case OpLt, OpLe, OpGt, OpGe:
		return 4
	case OpAdd, OpSub:
		return 5
	case OpMul, OpDiv, OpRem:
		return 6
	case OpNot, OpNeg:
		return 7
	default:
		return 8
	}
}

func cOpSym(op Op) string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpRem:
		return "%"
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "&&"
	case OpOr:
		return "||"
	}
	return op.String()
}

// CString renders the term in C-like infix syntax, the form in which
// patches are presented to users, e.g. x == a || y == b.
func CString(t *Term) string {
	var b strings.Builder
	writeC(&b, t, 0)
	return b.String()
}

func writeC(b *strings.Builder, t *Term, parent int) {
	p := cPrec(t.Op)
	paren := p < parent
	switch t.Op {
	case OpIntConst:
		if t.Val < 0 && parent > 5 {
			fmt.Fprintf(b, "(%d)", t.Val)
		} else {
			b.WriteString(strconv.FormatInt(t.Val, 10))
		}
		return
	case OpBoolConst:
		if t.Val == 1 {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
		return
	case OpVar:
		b.WriteString(t.Name)
		return
	case OpNot:
		b.WriteByte('!')
		writeC(b, t.Args[0], p+1)
		return
	case OpNeg:
		b.WriteByte('-')
		writeC(b, t.Args[0], p+1)
		return
	case OpIte:
		b.WriteByte('(')
		writeC(b, t.Args[0], 0)
		b.WriteString(" ? ")
		writeC(b, t.Args[1], 0)
		b.WriteString(" : ")
		writeC(b, t.Args[2], 0)
		b.WriteByte(')')
		return
	case OpImplies:
		if paren {
			b.WriteByte('(')
		}
		b.WriteByte('!')
		writeC(b, t.Args[0], 8)
		b.WriteString(" || ")
		writeC(b, t.Args[1], p)
		if paren {
			b.WriteByte(')')
		}
		return
	}
	// Render canonical linear comparisons (Σ cᵢ·aᵢ ⋈ k with mixed signs,
	// as Simplify produces) in natural form: negative-coefficient terms
	// move to the right-hand side, so a + -x <= -1 prints as a <= x - 1.
	if isLinearCmp(t) {
		if s, ok := naturalCmp(t); ok {
			if paren {
				b.WriteString("(" + s + ")")
			} else {
				b.WriteString(s)
			}
			return
		}
	}
	if paren {
		b.WriteByte('(')
	}
	sym := cOpSym(t.Op)
	for i, a := range t.Args {
		if i > 0 {
			b.WriteByte(' ')
			b.WriteString(sym)
			b.WriteByte(' ')
		}
		childParent := p
		if i > 0 && (t.Op == OpSub || t.Op == OpDiv || t.Op == OpRem) {
			childParent = p + 1 // left-associative: parenthesize right child
		}
		writeC(b, a, childParent)
	}
	if paren {
		b.WriteByte(')')
	}
}

func isLinearCmp(t *Term) bool {
	switch t.Op {
	case OpLe, OpLt, OpGe, OpGt:
		return true
	case OpEq, OpNe:
		return t.Args[0].Sort == SortInt
	}
	return false
}

// naturalCmp rebalances a linear comparison for display. It returns
// ok=false when the expression is not linear (leaving the generic printer
// to handle it).
func naturalCmp(t *Term) (string, bool) {
	diff := Linearize(Sub(t.Args[0], t.Args[1]))
	var lhs, rhs []string
	appendTerm := func(side *[]string, coef int64, atom *Term) {
		var s string
		switch {
		case coef == 1:
			s = cAtomString(atom)
		default:
			s = fmt.Sprintf("%d * %s", coef, cAtomString(atom))
		}
		*side = append(*side, s)
	}
	for _, a := range diff.SortedAtoms() {
		c := diff.Coeff[a]
		if c > 0 {
			appendTerm(&lhs, c, a)
		} else {
			appendTerm(&rhs, -c, a)
		}
	}
	k := -diff.Const // lhs ⋈ rhs + k
	join := func(parts []string, k int64) string {
		if len(parts) == 0 {
			return strconv.FormatInt(k, 10)
		}
		s := strings.Join(parts, " + ")
		if k > 0 {
			s += " + " + strconv.FormatInt(k, 10)
		} else if k < 0 {
			s += " - " + strconv.FormatInt(-k, 10)
		}
		return s
	}
	op := t.Op
	left, right := join(lhs, 0), join(rhs, k)
	if len(lhs) == 0 && len(rhs) > 0 {
		// Flip so variables sit on the left: 0 ⋈ rhs + k  ⇒  rhs ⋙ −k.
		left, right = join(rhs, 0), strconv.FormatInt(-k, 10)
		switch op {
		case OpLe:
			op = OpGe
		case OpLt:
			op = OpGt
		case OpGe:
			op = OpLe
		case OpGt:
			op = OpLt
		}
	}
	return left + " " + cOpSym(op) + " " + right, true
}

// cAtomString renders a linearization atom (variable or product chain).
func cAtomString(t *Term) string {
	var b strings.Builder
	writeC(&b, t, 6)
	return b.String()
}
