package expr

import "fmt"

// Model assigns integer values to variables. Boolean variables use 0 for
// false and 1 for true.
type Model map[string]int64

// Clone returns a copy of the model.
func (m Model) Clone() Model {
	c := make(Model, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// EvalError reports a run-time error during evaluation, such as division by
// zero or an unbound variable.
type EvalError struct {
	Term *Term
	Msg  string
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("expr: eval %s: %s", e.Term, e.Msg)
}

// Eval evaluates t under m. Boolean results are 0 or 1. It returns an
// *EvalError for division or remainder by zero and for variables absent
// from m.
func Eval(t *Term, m Model) (int64, error) {
	switch t.Op {
	case OpIntConst, OpBoolConst:
		return t.Val, nil
	case OpVar:
		v, ok := m[t.Name]
		if !ok {
			return 0, &EvalError{t, "unbound variable " + t.Name}
		}
		return v, nil
	case OpAdd:
		var sum int64
		for _, a := range t.Args {
			v, err := Eval(a, m)
			if err != nil {
				return 0, err
			}
			sum += v
		}
		return sum, nil
	case OpSub:
		a, b, err := eval2(t, m)
		if err != nil {
			return 0, err
		}
		return a - b, nil
	case OpMul:
		a, b, err := eval2(t, m)
		if err != nil {
			return 0, err
		}
		return a * b, nil
	case OpDiv:
		a, b, err := eval2(t, m)
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return 0, &EvalError{t, "division by zero"}
		}
		return a / b, nil
	case OpRem:
		a, b, err := eval2(t, m)
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return 0, &EvalError{t, "remainder by zero"}
		}
		return a % b, nil
	case OpNeg:
		v, err := Eval(t.Args[0], m)
		if err != nil {
			return 0, err
		}
		return -v, nil
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		a, b, err := eval2(t, m)
		if err != nil {
			return 0, err
		}
		return b2i(cmpConst(t.Op, a, b)), nil
	case OpAnd:
		for _, a := range t.Args {
			v, err := Eval(a, m)
			if err != nil {
				return 0, err
			}
			if v == 0 {
				return 0, nil
			}
		}
		return 1, nil
	case OpOr:
		for _, a := range t.Args {
			v, err := Eval(a, m)
			if err != nil {
				return 0, err
			}
			if v != 0 {
				return 1, nil
			}
		}
		return 0, nil
	case OpNot:
		v, err := Eval(t.Args[0], m)
		if err != nil {
			return 0, err
		}
		return b2i(v == 0), nil
	case OpImplies:
		a, b, err := eval2(t, m)
		if err != nil {
			return 0, err
		}
		return b2i(a == 0 || b != 0), nil
	case OpIte:
		c, err := Eval(t.Args[0], m)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return Eval(t.Args[1], m)
		}
		return Eval(t.Args[2], m)
	}
	return 0, &EvalError{t, "unknown operator"}
}

// EvalBool evaluates a boolean term under m.
func EvalBool(t *Term, m Model) (bool, error) {
	if t.Sort != SortBool {
		return false, &EvalError{t, "not a boolean term"}
	}
	v, err := Eval(t, m)
	return v != 0, err
}

func eval2(t *Term, m Model) (int64, int64, error) {
	a, err := Eval(t.Args[0], m)
	if err != nil {
		return 0, 0, err
	}
	b, err := Eval(t.Args[1], m)
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
