module cpr

go 1.22
