// Logical-error repair with assertion specifications (the paper's §5.3,
// Table 4 scenario): the SV-COMP insertion-sort task has a wrong
// comparison in its inner loop, and the specification is the sortedness
// assertion itself — no crash involved.
//
//	go run ./examples/svcomp
package main

import (
	"fmt"
	"log"

	"cpr"
)

func main() {
	for _, id := range [][2]string{
		{"loops", "insertion_sort"},
		{"recursive", "addition"},
	} {
		subject := cpr.FindSubject(id[0], id[1])
		if subject == nil {
			log.Fatalf("subject %v not found", id)
		}
		fmt.Printf("=== %s ===\n", subject.ID())
		fmt.Printf("spec: %s   developer patch: %s\n", subject.SpecSrc, subject.DevPatch)

		job, err := subject.Job(cpr.Budget{MaxIterations: 20, ValidationIterations: 6})
		if err != nil {
			log.Fatal(err)
		}
		res, err := cpr.Repair(job, cpr.Options{})
		if err != nil {
			log.Fatal(err)
		}
		dev, err := subject.DevPatchTerm()
		if err != nil {
			log.Fatal(err)
		}
		rank, found := cpr.CorrectPatchRank(res, dev, job.InputBounds)
		fmt.Printf("|P| %d → %d (%.0f%%), φE=%d, correct patch found=%v rank=%d\n",
			res.Stats.PInit, res.Stats.PFinal, res.Stats.ReductionRatio()*100,
			res.Stats.PathsExplored, found, rank)
		for _, line := range cpr.FormatTopPatches(res, 3) {
			fmt.Println("  " + line)
		}
		fmt.Println()
	}
}
