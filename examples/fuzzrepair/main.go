// Fuzz-then-repair: when no failing test is available, the paper (§3.2)
// generates one with directed greybox fuzzing before concolic repair
// starts. This example reproduces that pipeline: the bug hides behind a
// narrow guard, the fuzzer finds a crash-exposing input, and CPR repairs
// from it.
//
//	go run ./examples/fuzzrepair
package main

import (
	"fmt"
	"log"

	"cpr"
)

const subject = `
void main(int size, int mode) {
    int buf[10];
    if (mode >= 3) {
        if (mode <= 5) {
            if (__HOLE__) {
                return;
            }
            __BUG__;
            buf[size] = mode;
        }
    }
}
`

func main() {
	prog, err := cpr.ParseProgram(subject)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: no failing test available — fuzz for one. The buggy
	// original has no guard, i.e. the hole is the constant false.
	original, err := cpr.ParseSpec("false")
	if err != nil {
		log.Fatal(err)
	}
	camp := cpr.FindFailingInput(prog, original, cpr.FuzzOptions{
		Seed: 7,
		InputBounds: map[string]cpr.Interval{
			"size": cpr.NewInterval(-50, 50),
			"mode": cpr.NewInterval(-50, 50),
		},
	})
	if camp.Failing == nil {
		log.Fatalf("fuzzer found no failing input in %d runs", camp.Runs)
	}
	fmt.Printf("fuzzer: failing input %v after %d runs (%d bug-location hits)\n\n",
		camp.Failing, camp.Runs, camp.BugHits)

	// Step 2: repair from the generated failing input.
	spec, err := cpr.ParseSpec("(and (>= size 0) (< size 10))", "size")
	if err != nil {
		log.Fatal(err)
	}
	job := cpr.Job{
		Program:       prog,
		Spec:          spec,
		FailingInputs: []map[string]int64{camp.Failing},
		Components: cpr.Components{
			Vars:         map[string]cpr.LangType{"size": cpr.TypeInt, "mode": cpr.TypeInt},
			Params:       []string{"a", "b"},
			ParamRange:   cpr.NewInterval(-10, 10),
			Arith:        []cpr.Op{},
			Cmp:          []cpr.Op{cpr.OpLt, cpr.OpGe},
			Bool:         []cpr.Op{cpr.OpOr},
			MaxTemplates: 40, // paper-scale pool
		},
		InputBounds: map[string]cpr.Interval{
			"size": cpr.NewInterval(-50, 50),
			"mode": cpr.NewInterval(-50, 50),
		},
		Budget: cpr.Budget{MaxIterations: 40},
	}
	res, err := cpr.Repair(job, cpr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair: |P| %d → %d (%.0f%% reduction), φE=%d φS=%d\n",
		res.Stats.PInit, res.Stats.PFinal, res.Stats.ReductionRatio()*100,
		res.Stats.PathsExplored, res.Stats.PathsSkipped)
	for _, line := range cpr.FormatTopPatches(res, 5) {
		fmt.Println("  " + line)
	}
}
