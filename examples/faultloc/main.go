// Fault localization: the paper assumes the fault location is given and
// notes (§7) it can be derived from statistical fault localization. This
// example shows that derivation: spectrum-based localization over failing
// and passing runs pinpoints the buggy statement, which is where the
// __HOLE__ would be placed for repair.
//
//	go run ./examples/faultloc
package main

import (
	"fmt"
	"log"
	"strings"

	"cpr"
)

// The buggy division hides inside one branch; the other statements are
// executed by passing runs too.
const subject = `
void main(int mode, int size) {
    int limit = size + 8;
    if (mode == 2) {
        int chunk = 256 / size;
        int used = chunk + 1;
    } else {
        int safe = 256 / limit;
        int used = safe + 1;
    }
    int done = limit * 2;
}
`

func main() {
	prog, err := cpr.ParseProgram(subject)
	if err != nil {
		log.Fatal(err)
	}

	// A mixed pool of failing and passing inputs (in practice these come
	// from a test suite or a fuzzing campaign).
	inputs := []map[string]int64{
		{"mode": 2, "size": 0}, // failing: 256/0
		{"mode": 2, "size": 0}, // failing again (different x would too)
		{"mode": 2, "size": 4}, // passing through the buggy branch
		{"mode": 1, "size": 0}, // passing through the safe branch
		{"mode": 0, "size": 9}, // passing
	}

	for _, formula := range []cpr.FaultOptions{
		{Formula: cpr.Ochiai},
		{Formula: cpr.Tarantula},
		{Formula: cpr.Jaccard},
	} {
		rep, err := cpr.LocalizeFault(prog, inputs, formula)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v ranking (%d failing, %d passing runs):\n",
			formula.Formula, rep.Failing, rep.Passing)
		lines := strings.Split(subject, "\n")
		for i, r := range rep.Ranked {
			if i >= 4 {
				break
			}
			src := ""
			if r.Pos.Line-1 < len(lines) {
				src = strings.TrimSpace(lines[r.Pos.Line-1])
			}
			fmt.Printf("  %2d. line %2d  score %.3f  %s\n", i+1, r.Pos.Line, r.Score, src)
		}
		fmt.Println()
	}
	fmt.Println("the top-ranked statement is where __HOLE__ goes for the repair job")
}
