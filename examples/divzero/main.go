// CVE-2016-3623 walk-through: the paper's illustrative example (§2).
//
// This example runs CPR on the benchmark re-encoding of the LibTIFF
// rgb2ycbcr divide-by-zero and narrates the interplay between input-space
// exploration and patch-space reduction: the pool shrinks as partitions
// are explored, the correct guard (x == 0 || y == 0) survives, and
// functionality-deleting patches are deprioritized by the ranking.
//
//	go run ./examples/divzero
package main

import (
	"fmt"
	"log"

	"cpr"
)

func main() {
	subject := cpr.FindSubject("Libtiff", "CVE-2016-3623")
	if subject == nil {
		log.Fatal("subject not found")
	}
	fmt.Printf("subject: %s (%s benchmark)\n", subject.ID(), subject.Suite)
	fmt.Printf("developer patch: %s\n", subject.DevPatch)
	fmt.Printf("specification:   %s\n\n", subject.SpecSrc)

	prog, err := subject.Program()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("buggy program (with the patch location as a hole):")
	fmt.Println(cpr.FormatProgram(prog, ""))

	// Anytime behavior: run with increasing budgets and watch the patch
	// space shrink (the paper's gradual-correctness viewpoint).
	for _, budget := range []int{2, 8, 25} {
		job, err := subject.Job(cpr.Budget{MaxIterations: budget, ValidationIterations: 8})
		if err != nil {
			log.Fatal(err)
		}
		res, err := cpr.Repair(job, cpr.Options{})
		if err != nil {
			log.Fatal(err)
		}
		dev, err := subject.DevPatchTerm()
		if err != nil {
			log.Fatal(err)
		}
		rank, found := cpr.CorrectPatchRank(res, dev, job.InputBounds)
		rankStr := "not found"
		if found {
			rankStr = fmt.Sprintf("rank %d", rank)
		}
		fmt.Printf("budget %3d iterations: |P| %4d → %4d (%.0f%% reduction), φE=%d φS=%d, correct patch %s\n",
			budget, res.Stats.PInit, res.Stats.PFinal, res.Stats.ReductionRatio()*100,
			res.Stats.PathsExplored, res.Stats.PathsSkipped, rankStr)
		if budget == 25 {
			fmt.Println("\nfinal ranking:")
			for _, line := range cpr.FormatTopPatches(res, 5) {
				fmt.Println("  " + line)
			}
			best := res.Ranked[0]
			params, _ := best.AnyParams()
			fmt.Println("\nrepaired program:")
			fmt.Println(cpr.FormatProgram(prog, cpr.PatchText(best, params)))
		}
	}
}
