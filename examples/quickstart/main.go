// Quickstart: repair a divide-by-zero with concolic program repair.
//
// The subject program computes 100/x/y without sanitizing its inputs. We
// give CPR the crash-free specification (x ≠ 0 ∧ y ≠ 0 at the bug
// location) and one failing input, and let it synthesize and reduce a
// pool of guard patches.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"cpr"
)

const subject = `
void main(int x, int y) {
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int c = 100 / x;
    int d = c / y;
}
`

func main() {
	prog, err := cpr.ParseProgram(subject)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := cpr.ParseSpec("(and (distinct x 0) (distinct y 0))", "x", "y")
	if err != nil {
		log.Fatal(err)
	}

	job := cpr.Job{
		Program:       prog,
		Spec:          spec,
		FailingInputs: []map[string]int64{{"x": 7, "y": 0}},
		Components: cpr.Components{
			Vars:         map[string]cpr.LangType{"x": cpr.TypeInt, "y": cpr.TypeInt},
			Params:       []string{"a", "b"},
			ParamRange:   cpr.NewInterval(-10, 10),
			Arith:        []cpr.Op{}, // guards need no arithmetic here
			Cmp:          []cpr.Op{cpr.OpEq, cpr.OpGe, cpr.OpLt},
			Bool:         []cpr.Op{cpr.OpOr},
			MaxTemplates: 40, // paper-scale pool; keeps the demo snappy
		},
		InputBounds: map[string]cpr.Interval{
			"x": cpr.NewInterval(-100, 100),
			"y": cpr.NewInterval(-100, 100),
		},
		// Repair is an anytime algorithm: besides the iteration budget, a
		// wall-clock MaxDuration caps the run. On expiry the best-so-far
		// pool comes back with Stats.TimedOut set — never an error.
		Budget: cpr.Budget{MaxIterations: 60, MaxDuration: 30 * time.Second},
	}

	// ModelCountRanking enables the paper's §3.5.3 fine-tuning: guards that
	// fire on most of a partition (near functionality deletion) gain less
	// ranking evidence.
	res, err := cpr.Repair(job, cpr.Options{ModelCountRanking: true})
	if err != nil {
		log.Fatal(err)
	}

	st := res.Stats
	if st.TimedOut {
		fmt.Println("run DEGRADED: wall-clock budget expired, showing the best-so-far pool")
	} else {
		fmt.Println("run completed within its budget")
	}
	fmt.Printf("patch space: %d → %d concrete patches (%.0f%% reduction)\n",
		st.PInit, st.PFinal, st.ReductionRatio()*100)
	fmt.Printf("paths explored: %d, skipped by path reduction: %d\n", st.PathsExplored, st.PathsSkipped)
	if n := st.SolverUnknowns + st.SolverPanics + st.ExecPanics + st.FlipsDropped; n > 0 {
		fmt.Printf("degraded work: %d solver unknowns, %d solver panics, %d exec panics, %d flips dropped\n",
			st.SolverUnknowns, st.SolverPanics, st.ExecPanics, st.FlipsDropped)
	}
	fmt.Println()

	fmt.Println("top patches:")
	for _, line := range cpr.FormatTopPatches(res, 5) {
		fmt.Println("  " + line)
	}

	// Compare against the known developer fix.
	dev, err := cpr.ParseSpec("(or (= x 0) (= y 0))", "x", "y")
	if err != nil {
		log.Fatal(err)
	}
	if rank, ok := cpr.CorrectPatchRank(res, dev, job.InputBounds); ok {
		fmt.Printf("\ndeveloper patch (x == 0 || y == 0) covered at rank %d\n", rank)
	} else {
		fmt.Println("\ndeveloper patch not covered (increase the budget)")
	}

	// Validate the best patch dynamically on a grid of inputs.
	best := res.Ranked[0]
	params, _ := best.AnyParams()
	crashes := 0
	for x := int64(-5); x <= 5; x++ {
		for y := int64(-5); y <= 5; y++ {
			crashed, err := cpr.RunPatched(prog, map[string]int64{"x": x, "y": y}, best.Expr, params)
			if err != nil {
				log.Fatal(err)
			}
			if crashed {
				crashes++
			}
		}
	}
	fmt.Printf("\npatched program crashes on %d/121 grid inputs\n", crashes)
	fmt.Println("\npatched program:")
	fmt.Println(cpr.FormatProgram(prog, cpr.PatchText(best, params)))
}
