// Package cpr is a Go implementation of Concolic Program Repair
// (Shariffdeen, Noller, Grunske, Roychoudhury — PLDI 2021): automated
// program repair that co-explores the input space and the patch space,
// discarding overfitting patches by checking a user-provided specification
// along concolically explored paths.
//
// Subject programs are written in a small C-like language (see package
// documentation in internal/lang): the patch location is the expression
// hole __HOLE__, the bug location is marked __BUG__, and the program
// inputs are the parameters of main. A repair Job combines the program
// with a specification, at least one failing input, and the synthesis
// components; Repair returns a ranked pool of abstract patches.
//
//	prog, _ := cpr.ParseProgram(src)
//	spec, _ := cpr.ParseSpec("(distinct y 0)", "y")
//	res, _ := cpr.Repair(cpr.Job{
//	    Program:       prog,
//	    Spec:          spec,
//	    FailingInputs: []map[string]int64{{"x": 7, "y": 0}},
//	    Components:    cpr.Components{ /* … */ },
//	}, cpr.Options{})
//	for _, line := range cpr.FormatTopPatches(res, 5) {
//	    fmt.Println(line)
//	}
package cpr

import (
	"os"

	"cpr/internal/bench"
	"cpr/internal/cancel"
	"cpr/internal/cegis"
	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/faultloc"
	"cpr/internal/fuzz"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/lang/interp"
	"cpr/internal/patch"
	"cpr/internal/smt"
	"cpr/internal/synth"
)

// Core repair types, re-exported for library users.
type (
	// Job describes one repair task: program, specification, failing
	// inputs, synthesis components, input bounds, and budget.
	Job = core.Job
	// Budget bounds the anytime repair loop: deterministic iteration
	// budgets plus an optional wall-clock MaxDuration/Deadline. On expiry
	// Repair returns the best-so-far pool with Stats.TimedOut set.
	Budget = core.Budget
	// CancelToken cooperatively winds a repair run down from the outside
	// (e.g. a signal handler); install it in Options.Cancel.
	CancelToken = cancel.Token
	// Options tunes the repair engine.
	Options = core.Options
	// CheckpointOptions configures the durable run journal: snapshot
	// directory, barrier interval, and resume; see Options.Checkpoint.
	CheckpointOptions = core.CheckpointOptions
	// Result is a ranked pool of surviving abstract patches plus stats.
	Result = core.Result
	// Stats carries the measurements the paper's tables report.
	Stats = core.Stats
	// Patch is an abstract patch (θρ, Tρ, ψρ) with ranking evidence.
	Patch = patch.Patch
	// Components is the synthesis language (variables, constants,
	// parameters, operators).
	Components = synth.Components
	// Interval is a closed integer interval, used for bounds.
	Interval = interval.Interval
	// Term is a logical term (expressions, specifications, patches).
	Term = expr.Term
	// Model assigns integer values to variables.
	Model = expr.Model
	// Program is a parsed mini-C subject program.
	Program = lang.Program
	// CEGISOptions tunes the CEGIS baseline.
	CEGISOptions = cegis.Options
	// CEGISResult is the CEGIS baseline outcome.
	CEGISResult = cegis.Result
	// FuzzOptions tunes the failing-input fuzzer.
	FuzzOptions = fuzz.Options
	// FuzzCampaign summarizes a fuzzing run.
	FuzzCampaign = fuzz.Campaign
	// Subject is a benchmark subject with the paper's reported numbers.
	Subject = bench.Subject
	// LangType is a mini-C type, used in Components.Vars.
	LangType = lang.Type
	// Op is a term operator, used to select synthesis components.
	Op = expr.Op
)

// Mini-C scalar types for Components.Vars.
const (
	TypeInt  = lang.TypeInt
	TypeBool = lang.TypeBool
)

// Operator components for Components.Arith, .Cmp, and .Bool.
const (
	OpAdd = expr.OpAdd
	OpSub = expr.OpSub
	OpMul = expr.OpMul
	OpDiv = expr.OpDiv
	OpRem = expr.OpRem
	OpEq  = expr.OpEq
	OpNe  = expr.OpNe
	OpLt  = expr.OpLt
	OpLe  = expr.OpLe
	OpGt  = expr.OpGt
	OpGe  = expr.OpGe
	OpAnd = expr.OpAnd
	OpOr  = expr.OpOr
	OpNot = expr.OpNot
)

// PatchText renders a patch with its parameters substituted, in C syntax,
// ready for FormatProgram.
func PatchText(p *Patch, params Model) string {
	sub := make(map[string]*Term, len(params))
	for k, v := range params {
		sub[k] = expr.Int(v)
	}
	return expr.CString(expr.Simplify(expr.Subst(p.Expr, sub)))
}

// Repair runs concolic program repair (Algorithm 1 of the paper) and
// returns the reduced, ranked patch pool.
func Repair(job Job, opts Options) (*Result, error) { return core.Repair(job, opts) }

// RepairCEGIS runs the paper's CEGIS baseline (§5) on the same job.
func RepairCEGIS(job Job, opts CEGISOptions) (*CEGISResult, error) { return cegis.Repair(job, opts) }

// ParseProgram parses a mini-C subject program.
func ParseProgram(src string) (*Program, error) { return lang.Parse(src) }

// FormatProgram renders a program; a non-empty patchText replaces the
// __HOLE__ (how repaired programs are displayed).
func FormatProgram(p *Program, patchText string) string { return lang.Format(p, patchText) }

// ParseSpec parses a specification or patch expression in SMT-LIB-style
// prefix syntax, declaring the listed names as integer variables. Use
// ParseSpecTyped for boolean variables.
func ParseSpec(src string, intVars ...string) (*Term, error) {
	return expr.Parse(src, expr.IntVarsFrom(intVars...))
}

// ParseSpecTyped parses an expression with explicit variable sorts: true
// in the map marks a boolean variable, false an integer.
func ParseSpecTyped(src string, vars map[string]bool) (*Term, error) {
	m := make(map[string]expr.Sort, len(vars))
	for name, isBool := range vars {
		if isBool {
			m[name] = expr.SortBool
		} else {
			m[name] = expr.SortInt
		}
	}
	return expr.Parse(src, m)
}

// NewInterval returns the closed interval [lo, hi] for bounds maps.
func NewInterval(lo, hi int64) Interval { return interval.New(lo, hi) }

// NewCancelToken returns a fresh cancellation token. Install it in
// Options.Cancel (or FuzzOptions.Cancel / CEGISOptions.Cancel) and call
// its Cancel method to wind the run down; the run then returns its
// best-so-far result with Stats.TimedOut set.
func NewCancelToken() *CancelToken { return cancel.New() }

// ErrCancelled is what CancelToken.Err reports after an explicit Cancel
// (as opposed to a deadline expiry) — e.g. to tell an interrupted run from
// a timed-out one.
var ErrCancelled = cancel.ErrCancelled

// WithSignalCancel derives a cancel token that is cancelled when one of
// the OS signals arrives, so an interrupted run (Ctrl-C, SIGTERM) winds
// down cooperatively: with checkpointing on, the engine commits a final
// snapshot at the cut point and a -resume rerun continues from the exact
// iteration. A second signal terminates immediately. The returned stop
// function releases the signal registration.
func WithSignalCancel(parent *CancelToken, sigs ...os.Signal) (*CancelToken, func()) {
	return cancel.WithSignals(parent, sigs...)
}

// FindFailingInput fuzzes the program (with the hole filled by original,
// which may be nil for hole-free programs) for a crash-exposing input —
// the paper's pre-processing step when no failing test is available.
func FindFailingInput(p *Program, original *Term, opts FuzzOptions) FuzzCampaign {
	opts.Original = original
	return fuzz.FindFailing(p, opts)
}

// RunPatched executes the program concretely with the given patch filled
// into the hole and reports whether the run crashed.
func RunPatched(p *Program, input map[string]int64, patchExpr *Term, params Model) (crashed bool, err error) {
	out := interp.Run(p, input, interp.Options{Hole: patchExpr, HoleParams: params})
	if out.Err != nil && !out.Crashed() && out.Err.Kind != interp.ErrAssumeViolated {
		return false, out.Err
	}
	return out.Crashed(), nil
}

// CorrectPatchRank returns the 1-based rank of the first pool patch
// semantically covering the reference patch, for evaluating repair runs
// against a known developer fix.
func CorrectPatchRank(res *Result, reference *Term, inputBounds map[string]Interval) (int, bool) {
	solver := smt.NewSolver(smt.Options{})
	return core.CorrectPatchRank(solver, res.Ranked, reference, inputBounds)
}

// FormatTopPatches renders the top-n ranked patches of a result.
func FormatTopPatches(res *Result, n int) []string { return core.FormatTopPatches(res, n) }

// Fault-localization re-exports: spectrum-based localization derives the
// fault (patch) location when it is not known up front (§7 of the paper).
type (
	// FaultOptions tunes fault localization.
	FaultOptions = faultloc.Options
	// FaultReport ranks statements by suspiciousness.
	FaultReport = faultloc.Report
)

// Suspiciousness formulas for FaultOptions.Formula.
const (
	Ochiai    = faultloc.Ochiai
	Tarantula = faultloc.Tarantula
	Jaccard   = faultloc.Jaccard
)

// LocalizeFault executes the program on the given inputs (mixing failing
// and passing ones), collects statement spectra, and ranks statements by
// suspiciousness.
func LocalizeFault(p *Program, inputs []map[string]int64, opts FaultOptions) (*FaultReport, error) {
	return faultloc.Localize(p, inputs, opts)
}

// Benchmark suite names for Subjects.
const (
	SuiteExtractFix = bench.SuiteExtractFix
	SuiteManyBugs   = bench.SuiteManyBugs
	SuiteSVCOMP     = bench.SuiteSVCOMP
)

// Subjects returns the benchmark subjects of a suite (the paper's
// evaluation corpus re-encoded in the mini language).
func Subjects(suite string) []*Subject { return bench.Catalog(suite) }

// FindSubject returns a benchmark subject by project and bug id.
func FindSubject(project, bugID string) *Subject { return bench.Find(project, bugID) }
